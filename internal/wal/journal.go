package wal

import (
	"context"
	"encoding/binary"
	"errors"
	"fmt"
	"io/fs"
	"sync"

	"repro/internal/murmur3"
	"repro/internal/pfs"
)

// ErrTampered reports a journal whose hash chain is broken: a record
// that frames and checksums correctly but does not chain from its
// predecessor. A crash cannot produce this — crash damage fails the CRC
// and is skipped as a hole, and the next valid record still chains from
// the last one before the hole — so a broken chain means a record was
// altered or removed after it was written.
var ErrTampered = errors.New("wal: hash chain broken")

// ErrWedged reports an append on a journal that has already failed an
// append: after any write error the journal refuses further records, so
// the in-memory chain and the on-disk chain cannot silently diverge
// within one process life. Recovery is a restart (reopen and replay).
var ErrWedged = errors.New("wal: journal wedged after append failure")

// Replay is what Open recovered from an existing journal.
type Replay struct {
	// Records is the valid chain, in order.
	Records []Record
	// Holes counts damaged regions that were skipped mid-log (torn
	// frames from crashed appends that later appends wrote past).
	Holes int
	// TornTailBytes counts trailing bytes after the last valid record —
	// a frame torn by a crash (or, indistinguishably, a damaged final
	// record; the dropped record is visible here either way).
	TornTailBytes int64
	// Cost is the replay's storage read cost.
	Cost pfs.Cost
}

// Journal is the chaining writer over one store-backed log. All appends
// go through the store's Append writer, so journal writes are priced on
// the virtual clock and visible to fault injection like every other
// storage operation. Safe for concurrent use.
type Journal struct {
	fs   *pfs.Store
	name string

	mu     sync.Mutex
	seq    uint64
	head   murmur3.Digest
	size   int64
	cost   pfs.Cost
	wedged error
}

// Open replays the named journal (creating the state for an empty one
// when the file does not exist) and returns a writer positioned at the
// chain head. Damage is classified, not ignored: torn frames are
// skipped as holes or a torn tail, but a record that breaks the hash
// chain fails with ErrTampered — a tampered journal refuses to open.
func Open(ctx context.Context, fsys *pfs.Store, name string) (*Journal, *Replay, error) {
	if name == "" {
		name = DefaultName
	}
	j := &Journal{fs: fsys, name: name}
	rep := &Replay{}
	raw, cost, err := fsys.ReadFileFull(ctx, name, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return j, rep, nil
		}
		return nil, nil, fmt.Errorf("wal: open %s: %w", name, err)
	}
	rep.Cost = cost
	recs, holes, torn, err := parseChain(raw)
	if err != nil {
		return nil, nil, err
	}
	rep.Records = recs
	rep.Holes = holes
	rep.TornTailBytes = torn
	j.size = int64(len(raw))
	if n := len(recs); n > 0 {
		j.seq = recs[n-1].Seq
		j.head = recs[n-1].Digest
	}
	return j, rep, nil
}

// parseChain walks raw bytes into the valid record chain. Damaged
// regions are skipped by scanning for the next frame whose stored
// offset matches its position; the skipped bytes count as a hole (or
// the torn tail when nothing follows). Every accepted record must chain
// — consecutive Seq and Prev equal to the predecessor's Digest — and a
// framed record that does not chain is ErrTampered.
func parseChain(raw []byte) (recs []Record, holes int, tornTail int64, err error) {
	var head murmur3.Digest
	var seq uint64
	off := 0
	damagedSince := -1 // start of the damaged region being scanned, -1 if none
	for off < len(raw) {
		payload, frameLen, ok := frameAt(raw, off)
		if !ok {
			if damagedSince < 0 {
				damagedSince = off
			}
			off = nextCandidate(raw, off+1)
			continue
		}
		rec, derr := decodePayload(payload)
		if derr != nil {
			// Framed bytes that fail structural decode: treat like any
			// other damage and let the next record's linkage judge.
			if damagedSince < 0 {
				damagedSince = off
			}
			off = nextCandidate(raw, off+1)
			continue
		}
		if rec.Seq != seq+1 || rec.Prev != head {
			return nil, 0, 0, fmt.Errorf(
				"%w: record at offset %d has seq %d prev %x, want seq %d prev %x",
				ErrTampered, off, rec.Seq, rec.Prev, seq+1, head)
		}
		if damagedSince >= 0 {
			holes++
			damagedSince = -1
		}
		recs = append(recs, rec)
		seq = rec.Seq
		head = rec.Digest
		off += frameLen
	}
	if damagedSince >= 0 {
		tornTail = int64(len(raw) - damagedSince)
	}
	return recs, holes, tornTail, nil
}

// nextCandidate returns the next offset at or after from where a frame
// could start (magic bytes with a matching stored offset), or len(raw).
func nextCandidate(raw []byte, from int) int {
	for i := from; i+frameHeader <= len(raw); i++ {
		if binary.LittleEndian.Uint32(raw[i:]) == frameMagic &&
			binary.LittleEndian.Uint64(raw[i+4:]) == uint64(i) {
			return i
		}
	}
	return len(raw)
}

// Append assigns the record its chain coordinates (Seq, Prev, Digest),
// frames it, and writes it durably, returning the completed record.
// The caller must leave Seq, Prev, and Digest zero — hand-rolled chain
// fields are rejected here and by the walchain lint rule. On any write
// error the journal wedges: the record is not part of the chain, and
// every later Append fails until the journal is reopened.
func (j *Journal) Append(rec Record) (Record, error) {
	if rec.Seq != 0 || rec.Prev != (murmur3.Digest{}) || rec.Digest != (murmur3.Digest{}) {
		return Record{}, errors.New("wal: Seq/Prev/Digest are assigned by the journal, not the caller")
	}
	if rec.Type == 0 {
		return Record{}, errors.New("wal: record needs a type")
	}
	j.mu.Lock()
	defer j.mu.Unlock()
	if j.wedged != nil {
		return Record{}, fmt.Errorf("%w: %v", ErrWedged, j.wedged)
	}
	rec.Seq = j.seq + 1
	rec.Prev = j.head
	payload := encodePayload(&rec)
	rec.Digest = payloadDigest(payload)
	frame := encodeFrame(payload, j.size)

	w, err := j.fs.Append(j.name)
	if err != nil {
		j.wedged = err
		return Record{}, fmt.Errorf("wal: append: %w", err)
	}
	n, werr := w.Write(frame)
	j.cost.Add(w.Cost())
	cerr := w.Close()
	j.size += int64(n) // torn writes persist a prefix; track it
	if werr != nil || cerr != nil || n != len(frame) {
		err := werr
		if err == nil {
			err = cerr
		}
		if err == nil {
			err = fmt.Errorf("wal: short append: %d of %d bytes", n, len(frame))
		}
		j.wedged = err
		return Record{}, fmt.Errorf("wal: append: %w", err)
	}
	j.seq = rec.Seq
	j.head = rec.Digest
	return rec, nil
}

// Name returns the store-relative journal path.
func (j *Journal) Name() string { return j.name }

// Seq returns the chain head's sequence number (0 for an empty chain).
func (j *Journal) Seq() uint64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.seq
}

// Head returns the chain head's digest.
func (j *Journal) Head() murmur3.Digest {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.head
}

// Size returns the journal's on-disk size in bytes, including holes.
func (j *Journal) Size() int64 {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.size
}

// Cost returns the accumulated append cost of this journal handle.
func (j *Journal) Cost() pfs.Cost {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.cost
}

// Wedged returns the append error that wedged the journal, or nil.
func (j *Journal) Wedged() error {
	j.mu.Lock()
	defer j.mu.Unlock()
	return j.wedged
}

// VerifyReport is verify-log's summary of one full chain walk.
type VerifyReport struct {
	// Records is the valid chain length; Seq and Head are the chain
	// head's coordinates.
	Records int            `json:"records"`
	Seq     uint64         `json:"seq"`
	Head    murmur3.Digest `json:"head"`
	// Holes and TornTailBytes report crash damage that replay skipped.
	Holes         int   `json:"holes"`
	TornTailBytes int64 `json:"tornTailBytes"`
	// Accepted, Started, and Verdicts count records by type; Jobs
	// counts distinct accepted jobs.
	Accepted int `json:"accepted"`
	Started  int `json:"started"`
	Verdicts int `json:"verdicts"`
	Jobs     int `json:"jobs"`
	// PendingJobs lists accepted jobs with no verdict yet (unfinished
	// at the last shutdown — recovery's re-admission work list).
	PendingJobs []uint64 `json:"pendingJobs,omitempty"`
	// DuplicateVerdicts lists jobs with more than one verdict record —
	// always a verification failure (exactly-once broken).
	DuplicateVerdicts []uint64 `json:"duplicateVerdicts,omitempty"`
	// OrphanVerdicts lists verdicts whose job has no accepted record.
	OrphanVerdicts []uint64 `json:"orphanVerdicts,omitempty"`
}

// Verify re-walks the chain and cross-checks the job lifecycle:
// ErrTampered on a broken chain, an error listing the jobs on
// duplicated or orphaned verdicts. Pending jobs and crash holes are
// reported, not errors — they are what recovery is for.
func Verify(ctx context.Context, fsys *pfs.Store, name string) (*VerifyReport, error) {
	if name == "" {
		name = DefaultName
	}
	raw, _, err := fsys.ReadFileFull(ctx, name, 0)
	if err != nil {
		if errors.Is(err, fs.ErrNotExist) {
			return &VerifyReport{}, nil
		}
		return nil, fmt.Errorf("wal: verify %s: %w", name, err)
	}
	recs, holes, torn, err := parseChain(raw)
	if err != nil {
		return nil, err
	}
	rep := &VerifyReport{Records: len(recs), Holes: holes, TornTailBytes: torn}
	if len(recs) > 0 {
		rep.Seq = recs[len(recs)-1].Seq
		rep.Head = recs[len(recs)-1].Digest
	}
	accepted := make(map[uint64]bool)
	verdicts := make(map[uint64]int)
	var order []uint64
	for i := range recs {
		r := &recs[i]
		switch r.Type {
		case TypeAccepted:
			rep.Accepted++
			if !accepted[r.Job] {
				accepted[r.Job] = true
				order = append(order, r.Job)
			}
		case TypeStarted:
			rep.Started++
		case TypeVerdict:
			rep.Verdicts++
			verdicts[r.Job]++
			if !accepted[r.Job] {
				rep.OrphanVerdicts = append(rep.OrphanVerdicts, r.Job)
			}
		}
	}
	rep.Jobs = len(accepted)
	for _, job := range order {
		switch n := verdicts[job]; {
		case n == 0:
			rep.PendingJobs = append(rep.PendingJobs, job)
		case n > 1:
			rep.DuplicateVerdicts = append(rep.DuplicateVerdicts, job)
		}
	}
	if len(rep.DuplicateVerdicts) > 0 {
		return rep, fmt.Errorf("wal: exactly-once broken: jobs %v have duplicate verdicts", rep.DuplicateVerdicts)
	}
	if len(rep.OrphanVerdicts) > 0 {
		return rep, fmt.Errorf("wal: jobs %v have verdicts but no accepted record", rep.OrphanVerdicts)
	}
	return rep, nil
}

// Recovered classifies a replayed chain for exactly-once recovery.
type Recovered struct {
	// Pending lists accepted records whose jobs have no verdict, in
	// acceptance order — the jobs to re-admit.
	Pending []Record
	// Verdicts maps completed jobs to their verdict record — served
	// from this ledger, never recomputed.
	Verdicts map[uint64]Record
	// MaxJob is the highest job ID seen; new IDs must start above it.
	MaxJob uint64
}

// Classify splits a replayed chain into completed and unfinished jobs.
func Classify(recs []Record) Recovered {
	out := Recovered{Verdicts: make(map[uint64]Record)}
	var acceptedOrder []Record
	for i := range recs {
		r := recs[i]
		if r.Job > out.MaxJob {
			out.MaxJob = r.Job
		}
		switch r.Type {
		case TypeAccepted:
			acceptedOrder = append(acceptedOrder, r)
		case TypeVerdict:
			out.Verdicts[r.Job] = r
		}
	}
	for _, r := range acceptedOrder {
		if _, done := out.Verdicts[r.Job]; !done {
			out.Pending = append(out.Pending, r)
		}
	}
	return out
}
