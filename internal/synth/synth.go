// Package synth generates synthetic checkpoint data with precisely
// controllable run-to-run divergence, used by the experiment harness to
// sweep the error-bound × chunk-size space of Figs. 5–7 without paying for
// full simulation runs at every problem size.
//
// The perturbation model mirrors what nondeterministic HACC runs produce
// (see internal/hacc): differences are spatially correlated — contiguous
// regions of particles share a divergence scale — and their magnitudes are
// log-uniformly distributed across several decades, so each error bound ε
// in the paper's sweep {1e-3..1e-7} marks a different fraction of the data
// as changed.
package synth

import (
	"encoding/binary"
	"math"
	"math/rand"

	"repro/internal/errbound"
)

// FieldF32 generates n float32 elements with HACC-like statistics:
// smoothly varying positive coordinates mixed with Gaussian velocities,
// deterministic in seed.
func FieldF32(n int, seed int64) []byte {
	rng := rand.New(rand.NewSource(seed))
	out := make([]byte, 4*n)
	walk := rng.Float64() * 100
	for i := 0; i < n; i++ {
		walk += rng.NormFloat64() * 0.01
		v := float32(walk + rng.NormFloat64()*0.1)
		binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(v))
	}
	return out
}

// PerturbConfig controls the divergence injected between two runs.
type PerturbConfig struct {
	// Seed makes the perturbation deterministic.
	Seed int64
	// BlockElems is the spatial-correlation length: contiguous blocks of
	// this many elements share a base divergence magnitude.
	BlockElems int
	// MagLo and MagHi bound the log-uniform block magnitude distribution.
	MagLo, MagHi float64
	// UntouchedFrac is the fraction of blocks left bit-identical
	// (regions where the two runs agree exactly).
	UntouchedFrac float64
	// ChangedFrac is the fraction of elements that actually change within
	// a touched block (divergence is sparse: a few particles differ, not
	// every value). Default 1/1024.
	ChangedFrac float64
}

// DefaultPerturb matches the statistics of the paper's nondeterministic
// HACC runs: divergence magnitudes span the whole ε sweep (log-uniform
// 1e-8..1e-2), regions of divergence are long (64 KB correlation length,
// matching the high marked fractions of Fig. 7a even at 4 KB chunks),
// changes within a region are sparse (so within-bound regions only rarely
// cross an ε-grid boundary, keeping hash false-positive rates in the
// paper's 0–0.2 range), and a modest fraction of the data is
// bit-identical. With these parameters ε=1e-3 marks ~15% of chunks and
// ε=1e-7 marks ~70%.
func DefaultPerturb(seed int64) PerturbConfig {
	return PerturbConfig{
		Seed:          seed,
		BlockElems:    16384,
		MagLo:         1e-8,
		MagHi:         1e-2,
		UntouchedFrac: 0.15,
		ChangedFrac:   1.0 / 1024,
	}
}

// PerturbF32 returns a perturbed copy of a float32 field under the config.
func PerturbF32(data []byte, cfg PerturbConfig) []byte {
	n := len(data) / 4
	out := make([]byte, len(data))
	copy(out, data)
	if cfg.BlockElems <= 0 {
		cfg.BlockElems = 1024
	}
	//lint:ignore epsflow config validation; exact ordering of the user's bounds is intended
	if cfg.MagLo <= 0 || cfg.MagHi < cfg.MagLo {
		return out
	}
	//lint:ignore epsflow config validation; exact ordering of the user's bounds is intended
	if cfg.ChangedFrac <= 0 || cfg.ChangedFrac > 1 {
		cfg.ChangedFrac = 1.0 / 1024
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	logLo, logHi := math.Log(cfg.MagLo), math.Log(cfg.MagHi)
	for start := 0; start < n; start += cfg.BlockElems {
		end := start + cfg.BlockElems
		if end > n {
			end = n
		}
		//lint:ignore epsflow Monte Carlo threshold draw; exact comparison intended
		if rng.Float64() < cfg.UntouchedFrac {
			continue
		}
		mag := math.Exp(logLo + rng.Float64()*(logHi-logLo))
		for i := start; i < end; i++ {
			//lint:ignore epsflow Monte Carlo threshold draw; exact comparison intended
			if rng.Float64() >= cfg.ChangedFrac {
				continue
			}
			bits := binary.LittleEndian.Uint32(out[i*4:])
			v := float64(math.Float32frombits(bits))
			delta := mag * (0.5 + rng.Float64()) // magnitude within [0.5, 1.5]·mag
			if rng.Intn(2) == 0 {
				delta = -delta
			}
			binary.LittleEndian.PutUint32(out[i*4:], math.Float32bits(float32(v+delta)))
		}
	}
	return out
}

// CountExceedingF32 returns how many element pairs differ by more than eps.
func CountExceedingF32(a, b []byte, eps float64) int {
	n := len(a) / 4
	if len(b)/4 < n {
		n = len(b) / 4
	}
	count := 0
	for i := 0; i < n; i++ {
		va := float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:])))
		vb := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		if !errbound.Equal(va, vb, eps) {
			count++
		}
	}
	return count
}

// RunPair generates the fields of two synthetic checkpoint "runs" with the
// given per-field element count: run B is run A under the perturbation.
func RunPair(fieldElems int, nFields int, dataSeed int64, perturb PerturbConfig) (runA, runB [][]byte) {
	runA = make([][]byte, nFields)
	runB = make([][]byte, nFields)
	for f := 0; f < nFields; f++ {
		runA[f] = FieldF32(fieldElems, dataSeed+int64(f)*7919)
		p := perturb
		p.Seed = perturb.Seed + int64(f)*104729
		runB[f] = PerturbF32(runA[f], p)
	}
	return runA, runB
}
