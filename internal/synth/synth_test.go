package synth

import (
	"bytes"
	"testing"
)

func TestFieldF32Deterministic(t *testing.T) {
	a := FieldF32(1000, 42)
	b := FieldF32(1000, 42)
	if !bytes.Equal(a, b) {
		t.Error("same seed produced different fields")
	}
	c := FieldF32(1000, 43)
	if bytes.Equal(a, c) {
		t.Error("different seeds produced identical fields")
	}
	if len(a) != 4000 {
		t.Errorf("field length = %d", len(a))
	}
}

func TestPerturbDeterministic(t *testing.T) {
	data := FieldF32(200000, 1)
	cfg := DefaultPerturb(7)
	a := PerturbF32(data, cfg)
	b := PerturbF32(data, cfg)
	if !bytes.Equal(a, b) {
		t.Error("same perturbation seed produced different outputs")
	}
	if bytes.Equal(a, data) {
		t.Error("perturbation changed nothing")
	}
	if len(a) != len(data) {
		t.Error("perturbation changed length")
	}
}

func TestPerturbUntouchedFraction(t *testing.T) {
	data := FieldF32(100*1024, 2)
	cfg := DefaultPerturb(3)
	cfg.UntouchedFrac = 1.0
	same := PerturbF32(data, cfg)
	if !bytes.Equal(same, data) {
		t.Error("UntouchedFrac=1 still perturbed data")
	}
	cfg.UntouchedFrac = 0
	all := PerturbF32(data, cfg)
	// Most blocks must contain at least one changed byte. (Blocks whose
	// drawn magnitude is below the float32 ULP of the data are legitimately
	// absorbed by rounding, as in the real simulation.)
	blockBytes := cfg.BlockElems * 4
	total, changed := 0, 0
	for off := 0; off+blockBytes <= len(data); off += blockBytes {
		total++
		if !bytes.Equal(all[off:off+blockBytes], data[off:off+blockBytes]) {
			changed++
		}
	}
	if float64(changed) < 0.5*float64(total) {
		t.Errorf("only %d/%d blocks changed with UntouchedFrac=0", changed, total)
	}
}

func TestPerturbBadMagnitudesNoop(t *testing.T) {
	data := FieldF32(1024, 4)
	cfg := PerturbConfig{Seed: 1, BlockElems: 64, MagLo: 0, MagHi: 1}
	if !bytes.Equal(PerturbF32(data, cfg), data) {
		t.Error("MagLo=0 should be a no-op")
	}
	cfg = PerturbConfig{Seed: 1, BlockElems: 64, MagLo: 1e-3, MagHi: 1e-5}
	if !bytes.Equal(PerturbF32(data, cfg), data) {
		t.Error("MagHi<MagLo should be a no-op")
	}
}

func TestExceedanceFractionOrdering(t *testing.T) {
	// The key workload property: smaller ε marks strictly more data.
	data := FieldF32(512*1024, 5)
	pert := PerturbF32(data, DefaultPerturb(6))
	n := len(data) / 4
	var prev int
	for i, eps := range []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7} {
		c := CountExceedingF32(data, pert, eps)
		if i > 0 && c < prev {
			t.Errorf("eps=%g marks %d < previous %d", eps, c, prev)
		}
		prev = c
	}
	// Element-level divergence is sparse (ChangedFrac) but must be
	// nonzero at the largest bound and grow several-fold by the smallest.
	lo := CountExceedingF32(data, pert, 1e-3)
	hi := CountExceedingF32(data, pert, 1e-7)
	if lo == 0 {
		t.Error("no elements exceed 1e-3")
	}
	if float64(hi) < 2*float64(lo) {
		t.Errorf("1e-7 exceedances (%d) not well above 1e-3 (%d)", hi, lo)
	}
	if frac := float64(hi) / float64(n); frac > 0.05 {
		t.Errorf("1e-7 marks %.3f of elements, want sparse (< 0.05)", frac)
	}
}

func TestCountExceeding(t *testing.T) {
	a := FieldF32(100, 1)
	if CountExceedingF32(a, a, 1e-9) != 0 {
		t.Error("identical data has exceedances")
	}
	// Mismatched lengths: compares the common prefix.
	if CountExceedingF32(a, a[:40], 1e-9) != 0 {
		t.Error("prefix comparison failed")
	}
}

func TestRunPair(t *testing.T) {
	a, b := RunPair(1000, 7, 11, DefaultPerturb(12))
	if len(a) != 7 || len(b) != 7 {
		t.Fatalf("field counts: %d, %d", len(a), len(b))
	}
	var anyDiff bool
	for f := range a {
		if len(a[f]) != 4000 || len(b[f]) != 4000 {
			t.Errorf("field %d sizes: %d, %d", f, len(a[f]), len(b[f]))
		}
		if !bytes.Equal(a[f], b[f]) {
			anyDiff = true
		}
	}
	if !anyDiff {
		t.Error("run pair has no divergence at all")
	}
	// Fields must differ from each other (independent seeds).
	if bytes.Equal(a[0], a[1]) {
		t.Error("fields 0 and 1 are identical")
	}
}
