package murmur3

import (
	"bytes"
	"encoding/binary"
	"fmt"
	"testing"
	"testing/quick"
)

// Reference vectors for MurmurHash3_x64_128 with seed 0, widely published
// and cross-checked against the SMHasher reference implementation.
func TestSum128KnownVectors(t *testing.T) {
	tests := []struct {
		in     string
		h1, h2 uint64
	}{
		{"", 0x0000000000000000, 0x0000000000000000},
		{"hello", 0xcbd8a7b341bd9b02, 0x5b1e906a48ae1d19},
		{"hello, world", 0x342fac623a5ebc8e, 0x4cdcbc079642414d},
		{"19 Jan 2038 at 3:14:07 AM", 0xb89e5988b737affc, 0x664fc2950231b2cb},
		{"The quick brown fox jumps over the lazy dog.", 0xcd99481f9ee902c9, 0x695da1a38987b6e7},
	}
	for _, tt := range tests {
		t.Run(fmt.Sprintf("%q", tt.in), func(t *testing.T) {
			h1, h2 := Sum128([]byte(tt.in), 0)
			if h1 != tt.h1 || h2 != tt.h2 {
				t.Errorf("Sum128(%q) = (%#x, %#x), want (%#x, %#x)", tt.in, h1, h2, tt.h1, tt.h2)
			}
		})
	}
}

func TestSum128SeedChangesHash(t *testing.T) {
	data := []byte("checkpoint chunk data")
	h1a, h2a := Sum128(data, 0)
	h1b, h2b := Sum128(data, 1)
	if h1a == h1b && h2a == h2b {
		t.Error("different seeds produced identical hashes")
	}
}

func TestSum128Deterministic(t *testing.T) {
	data := make([]byte, 1024)
	for i := range data {
		data[i] = byte(i * 31)
	}
	h1a, h2a := Sum128(data, 42)
	h1b, h2b := Sum128(data, 42)
	if h1a != h1b || h2a != h2b {
		t.Error("hash is not deterministic")
	}
}

func TestSum128AllTailLengths(t *testing.T) {
	// Exercise every tail-switch branch (lengths 0..16) and make sure no
	// two prefixes of distinct length collide.
	data := make([]byte, 16)
	for i := range data {
		data[i] = byte(i + 1)
	}
	seen := make(map[Digest]int, 17)
	for n := 0; n <= 16; n++ {
		d := SumDigest(data[:n], Digest{})
		if prev, ok := seen[d]; ok {
			t.Errorf("length %d collides with length %d", n, prev)
		}
		seen[d] = n
	}
}

func TestSumDigestChaining(t *testing.T) {
	// Chained hashing must differ from unchained hashing and must depend on
	// the seed digest.
	block := []byte("0123456789abcdef")
	zero := SumDigest(block, Digest{})
	chained := SumDigest(block, zero)
	if zero == chained {
		t.Error("chained digest equals unchained digest")
	}
}

func TestHashPairOrderSensitive(t *testing.T) {
	a := SumDigest([]byte("a"), Digest{})
	b := SumDigest([]byte("b"), Digest{})
	if HashPair(a, b) == HashPair(b, a) {
		t.Error("HashPair is not order sensitive")
	}
}

func TestSum128InputSensitivity(t *testing.T) {
	// Flipping any single bit of a 64-byte input must change the digest.
	base := make([]byte, 64)
	for i := range base {
		base[i] = byte(i)
	}
	want := SumDigest(base, Digest{})
	for i := 0; i < len(base)*8; i++ {
		mut := make([]byte, len(base))
		copy(mut, base)
		mut[i/8] ^= 1 << (i % 8)
		if SumDigest(mut, Digest{}) == want {
			t.Fatalf("bit flip at %d did not change digest", i)
		}
	}
}

func TestQuickNoCasualCollisions(t *testing.T) {
	// Property: distinct byte slices (almost surely) hash differently.
	f := func(a, b []byte) bool {
		if bytes.Equal(a, b) {
			return true
		}
		return SumDigest(a, Digest{}) != SumDigest(b, Digest{})
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestQuickSeedRoundTrip(t *testing.T) {
	// Property: Sum128 and SumDigest agree through the byte encoding.
	f := func(data []byte, s1, s2 uint64) bool {
		var seed Digest
		binary.LittleEndian.PutUint64(seed[0:8], s1)
		binary.LittleEndian.PutUint64(seed[8:16], s2)
		d := SumDigest(data, seed)
		h1, h2 := Sum128Seeded(data, s1, s2)
		return binary.LittleEndian.Uint64(d[0:8]) == h1 &&
			binary.LittleEndian.Uint64(d[8:16]) == h2
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkSum128_4KB(b *testing.B) {
	data := make([]byte, 4096)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}

func BenchmarkSum128_64B(b *testing.B) {
	data := make([]byte, 64)
	b.SetBytes(int64(len(data)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		Sum128(data, 0)
	}
}
