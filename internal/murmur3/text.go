package murmur3

import (
	"encoding/hex"
	"fmt"
)

// String renders the digest as lowercase hex.
func (d Digest) String() string { return hex.EncodeToString(d[:]) }

// MarshalText encodes the digest as lowercase hex, so digests embedded
// in JSON documents (journal records, verify-log reports) render as
// strings instead of byte arrays.
func (d Digest) MarshalText() ([]byte, error) {
	out := make([]byte, hex.EncodedLen(len(d)))
	hex.Encode(out, d[:])
	return out, nil
}

// UnmarshalText decodes a hex digest.
func (d *Digest) UnmarshalText(text []byte) error {
	if hex.DecodedLen(len(text)) != DigestSize {
		return fmt.Errorf("murmur3: digest text has %d hex chars, want %d", len(text), 2*DigestSize)
	}
	_, err := hex.Decode(d[:], text)
	return err
}
