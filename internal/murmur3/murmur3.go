// Package murmur3 implements the 128-bit x64 variant of MurmurHash3
// (referred to as Murmur3F in the paper and in SMHasher), the
// non-cryptographic hash used for error-bounded chunk hashing.
//
// The implementation is a from-scratch transliteration of the public-domain
// reference algorithm by Austin Appleby. It supports 64-bit seeds as well as
// 128-bit digest seeding, which the chained block-hashing scheme of the
// comparator uses (the digest of block i seeds the hash of block i+1).
package murmur3

import "encoding/binary"

const (
	c1 = 0x87c37b91114253d5
	c2 = 0x4cf5ad432745937f
)

// DigestSize is the size of a Murmur3F digest in bytes.
const DigestSize = 16

// Digest is a 128-bit Murmur3F hash value in canonical little-endian byte
// order (h1 first, then h2).
type Digest [DigestSize]byte

// Sum128 computes the 128-bit Murmur3F hash of data with a 64-bit seed
// (both internal state words are initialized to the seed, matching the
// reference implementation's 32-bit seed widening behaviour generalized to
// 64 bits).
func Sum128(data []byte, seed uint64) (uint64, uint64) {
	return Sum128Seeded(data, seed, seed)
}

// Sum128Seeded computes the 128-bit Murmur3F hash of data with independent
// 64-bit seeds for the two internal state words. Chained block hashing uses
// the two halves of the previous digest as the seeds of the next block.
func Sum128Seeded(data []byte, seed1, seed2 uint64) (uint64, uint64) {
	h1, h2 := seed1, seed2
	n := len(data)
	nblocks := n / 16

	for i := 0; i < nblocks; i++ {
		k1 := binary.LittleEndian.Uint64(data[i*16:])
		k2 := binary.LittleEndian.Uint64(data[i*16+8:])

		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1

		h1 = rotl64(h1, 27)
		h1 += h2
		h1 = h1*5 + 0x52dce729

		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2

		h2 = rotl64(h2, 31)
		h2 += h1
		h2 = h2*5 + 0x38495ab5
	}

	tail := data[nblocks*16:]
	var k1, k2 uint64
	switch len(tail) & 15 {
	case 15:
		k2 ^= uint64(tail[14]) << 48
		fallthrough
	case 14:
		k2 ^= uint64(tail[13]) << 40
		fallthrough
	case 13:
		k2 ^= uint64(tail[12]) << 32
		fallthrough
	case 12:
		k2 ^= uint64(tail[11]) << 24
		fallthrough
	case 11:
		k2 ^= uint64(tail[10]) << 16
		fallthrough
	case 10:
		k2 ^= uint64(tail[9]) << 8
		fallthrough
	case 9:
		k2 ^= uint64(tail[8])
		k2 *= c2
		k2 = rotl64(k2, 33)
		k2 *= c1
		h2 ^= k2
		fallthrough
	case 8:
		k1 ^= uint64(tail[7]) << 56
		fallthrough
	case 7:
		k1 ^= uint64(tail[6]) << 48
		fallthrough
	case 6:
		k1 ^= uint64(tail[5]) << 40
		fallthrough
	case 5:
		k1 ^= uint64(tail[4]) << 32
		fallthrough
	case 4:
		k1 ^= uint64(tail[3]) << 24
		fallthrough
	case 3:
		k1 ^= uint64(tail[2]) << 16
		fallthrough
	case 2:
		k1 ^= uint64(tail[1]) << 8
		fallthrough
	case 1:
		k1 ^= uint64(tail[0])
		k1 *= c1
		k1 = rotl64(k1, 31)
		k1 *= c2
		h1 ^= k1
	}

	h1 ^= uint64(n)
	h2 ^= uint64(n)

	h1 += h2
	h2 += h1

	h1 = fmix64(h1)
	h2 = fmix64(h2)

	h1 += h2
	h2 += h1

	return h1, h2
}

// SumDigest computes the Murmur3F digest of data using a previous digest as
// the 128-bit seed. A zero Digest is a valid initial seed.
func SumDigest(data []byte, seed Digest) Digest {
	s1 := binary.LittleEndian.Uint64(seed[0:8])
	s2 := binary.LittleEndian.Uint64(seed[8:16])
	h1, h2 := Sum128Seeded(data, s1, s2)
	var d Digest
	binary.LittleEndian.PutUint64(d[0:8], h1)
	binary.LittleEndian.PutUint64(d[8:16], h2)
	return d
}

// HashPair hashes the concatenation of two digests, the interior-node
// operation of the Merkle tree. The loop over the two 16-byte blocks and
// the tail switch of Sum128Seeded are fully unrolled (the input length is
// statically 32, so the tail is empty); the output is bit-identical to
// SumDigest(left||right, Digest{}).
func HashPair(left, right Digest) Digest {
	var h1, h2 uint64
	h1, h2 = pairBlock(h1, h2,
		binary.LittleEndian.Uint64(left[0:8]), binary.LittleEndian.Uint64(left[8:16]))
	h1, h2 = pairBlock(h1, h2,
		binary.LittleEndian.Uint64(right[0:8]), binary.LittleEndian.Uint64(right[8:16]))

	h1 ^= 2 * DigestSize
	h2 ^= 2 * DigestSize

	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1

	var d Digest
	binary.LittleEndian.PutUint64(d[0:8], h1)
	binary.LittleEndian.PutUint64(d[8:16], h2)
	return d
}

// pairBlock is one body round of the x64 128-bit algorithm (no
// finalization), shared by HashPair's unrolled blocks.
func pairBlock(h1, h2, k1, k2 uint64) (uint64, uint64) {
	k1 *= c1
	k1 = rotl64(k1, 31)
	k1 *= c2
	h1 ^= k1

	h1 = rotl64(h1, 27)
	h1 += h2
	h1 = h1*5 + 0x52dce729

	k2 *= c2
	k2 = rotl64(k2, 33)
	k2 *= c1
	h2 ^= k2

	h2 = rotl64(h2, 31)
	h2 += h1
	h2 = h2*5 + 0x38495ab5
	return h1, h2
}

// Chain is a streaming chained-block hasher: the fused equivalent of the
// comparator's per-block digest chaining
//
//	digest = SumDigest(block, digest)
//
// with the two state words kept live as uint64 across blocks instead of
// being serialized to a Digest and re-parsed as the next seed. Digest
// serialization is little-endian h1 then h2 and Sum128Seeded seeds
// (s1, s2) from exactly those words, so carrying (h1, h2) forward is
// bit-identical to the round-trip — Sum() after any sequence of
// Block/BlockTail calls equals the digest the SumDigest chain would have
// produced. The zero Chain is ready to use and corresponds to the zero
// Digest seed.
//
// Each Block call still runs the full finalization (length xor, fmix64
// avalanche): chaining semantics pin the block boundary, so finalization
// per block is part of the hash definition, not overhead that can be
// deferred. What the Chain eliminates is the per-block seed/serialize
// round-trip, the slice framing, and the dead 0..15 tail switch.
type Chain struct {
	h1, h2 uint64
}

// NewChain returns a Chain seeded from a previous digest (use the zero
// Chain for a zero seed).
func NewChain(seed Digest) Chain {
	return Chain{
		h1: binary.LittleEndian.Uint64(seed[0:8]),
		h2: binary.LittleEndian.Uint64(seed[8:16]),
	}
}

// Block absorbs one full 16-byte block given as two little-endian uint64
// words, exactly as if SumDigest had hashed those 16 bytes seeded by the
// current state. The body round is written out inline rather than calling
// pairBlock: Block is the per-block unit of the leaf-hash kernel, and one
// call frame per block (instead of two) is worth the duplication.
func (c *Chain) Block(k1, k2 uint64) {
	h1, h2 := c.h1, c.h2

	k1 *= c1
	k1 = rotl64(k1, 31)
	k1 *= c2
	h1 ^= k1

	h1 = rotl64(h1, 27)
	h1 += h2
	h1 = h1*5 + 0x52dce729

	k2 *= c2
	k2 = rotl64(k2, 33)
	k2 *= c1
	h2 ^= k2

	h2 = rotl64(h2, 31)
	h2 += h1
	h2 = h2*5 + 0x38495ab5

	// Finalization of a 16-byte input.
	h1 ^= 16
	h2 ^= 16

	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1

	c.h1, c.h2 = h1, h2
}

// BlockTail absorbs a final half block: one 8-byte little-endian word,
// exactly as if SumDigest had hashed those 8 bytes seeded by the current
// state (the odd-cell tail of an odd-element chunk).
func (c *Chain) BlockTail(k1 uint64) {
	h1, h2 := c.h1, c.h2

	// Tail path of Sum128Seeded for an 8-byte input: k1 only, no body
	// round for h2.
	k1 *= c1
	k1 = rotl64(k1, 31)
	k1 *= c2
	h1 ^= k1

	h1 ^= 8
	h2 ^= 8

	h1 += h2
	h2 += h1
	h1 = fmix64(h1)
	h2 = fmix64(h2)
	h1 += h2
	h2 += h1

	c.h1, c.h2 = h1, h2
}

// Sum returns the current chain state as a Digest.
func (c *Chain) Sum() Digest {
	var d Digest
	binary.LittleEndian.PutUint64(d[0:8], c.h1)
	binary.LittleEndian.PutUint64(d[8:16], c.h2)
	return d
}

func rotl64(x uint64, r uint) uint64 {
	return (x << r) | (x >> (64 - r))
}

func fmix64(k uint64) uint64 {
	k ^= k >> 33
	k *= 0xff51afd7ed558ccd
	k ^= k >> 33
	k *= 0xc4ceb9fe1a85ec53
	k ^= k >> 33
	return k
}
