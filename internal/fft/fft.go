// Package fft implements the radix-2 complex fast Fourier transform used
// by the particle-mesh Poisson solver in the HACC-like simulation
// substrate (internal/hacc). Transforms are in-place, iterative
// (bit-reversal permutation + butterfly passes), and support 1-D vectors
// and 3-D cubes of power-of-two extent.
package fft

import (
	"errors"
	"fmt"
	"math"
	"math/bits"
)

// ErrNotPowerOfTwo is returned when a transform length is not a power of
// two.
var ErrNotPowerOfTwo = errors.New("fft: length must be a power of two")

// Forward computes the in-place forward DFT of data (negative-exponent
// convention, no normalization).
func Forward(data []complex128) error {
	return transform(data, false)
}

// Inverse computes the in-place inverse DFT of data, including the 1/N
// normalization, so Inverse(Forward(x)) == x up to rounding.
func Inverse(data []complex128) error {
	if err := transform(data, true); err != nil {
		return err
	}
	n := complex(float64(len(data)), 0)
	for i := range data {
		data[i] /= n
	}
	return nil
}

func transform(data []complex128, inverse bool) error {
	n := len(data)
	if n == 0 {
		return nil
	}
	if n&(n-1) != 0 {
		return fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	// Bit-reversal permutation.
	shift := 64 - uint(bits.Len(uint(n-1)))
	if n == 1 {
		return nil
	}
	for i := 0; i < n; i++ {
		j := int(bits.Reverse64(uint64(i)) >> shift)
		if j > i {
			data[i], data[j] = data[j], data[i]
		}
	}
	// Butterfly passes.
	sign := -1.0
	if inverse {
		sign = 1.0
	}
	for size := 2; size <= n; size <<= 1 {
		half := size / 2
		step := sign * 2 * math.Pi / float64(size)
		wStep := complex(math.Cos(step), math.Sin(step))
		for start := 0; start < n; start += size {
			w := complex(1, 0)
			for k := 0; k < half; k++ {
				a := data[start+k]
				b := data[start+k+half] * w
				data[start+k] = a + b
				data[start+k+half] = a - b
				w *= wStep
			}
		}
	}
	return nil
}

// Cube is a dense 3-D complex field of extent n per axis, stored
// x-fastest: index = (z*n + y)*n + x.
type Cube struct {
	n    int
	data []complex128
}

// NewCube allocates an n×n×n cube; n must be a power of two.
func NewCube(n int) (*Cube, error) {
	if n <= 0 || n&(n-1) != 0 {
		return nil, fmt.Errorf("%w: %d", ErrNotPowerOfTwo, n)
	}
	return &Cube{n: n, data: make([]complex128, n*n*n)}, nil
}

// N returns the per-axis extent.
func (c *Cube) N() int { return c.n }

// Data returns the backing slice (x-fastest layout).
func (c *Cube) Data() []complex128 { return c.data }

// At returns the value at (x, y, z).
func (c *Cube) At(x, y, z int) complex128 {
	return c.data[(z*c.n+y)*c.n+x]
}

// Set stores v at (x, y, z).
func (c *Cube) Set(x, y, z int, v complex128) {
	c.data[(z*c.n+y)*c.n+x] = v
}

// Clear zeroes the cube.
func (c *Cube) Clear() {
	for i := range c.data {
		c.data[i] = 0
	}
}

// Forward3D computes the in-place 3-D forward DFT (separable: 1-D
// transforms along x, then y, then z).
func (c *Cube) Forward3D() error { return c.transform3D(Forward) }

// Inverse3D computes the in-place 3-D inverse DFT with normalization.
func (c *Cube) Inverse3D() error { return c.transform3D(Inverse) }

func (c *Cube) transform3D(f func([]complex128) error) error {
	n := c.n
	// Along x: contiguous rows.
	for zy := 0; zy < n*n; zy++ {
		if err := f(c.data[zy*n : (zy+1)*n]); err != nil {
			return err
		}
	}
	// Along y and z: gather into a scratch line, transform, scatter back.
	line := make([]complex128, n)
	for z := 0; z < n; z++ {
		for x := 0; x < n; x++ {
			for y := 0; y < n; y++ {
				line[y] = c.data[(z*n+y)*n+x]
			}
			if err := f(line); err != nil {
				return err
			}
			for y := 0; y < n; y++ {
				c.data[(z*n+y)*n+x] = line[y]
			}
		}
	}
	for y := 0; y < n; y++ {
		for x := 0; x < n; x++ {
			for z := 0; z < n; z++ {
				line[z] = c.data[(z*n+y)*n+x]
			}
			if err := f(line); err != nil {
				return err
			}
			for z := 0; z < n; z++ {
				c.data[(z*n+y)*n+x] = line[z]
			}
		}
	}
	return nil
}
