package fft

import (
	"math"
	"math/cmplx"
	"math/rand"
	"testing"
	"testing/quick"
)

func almostEqual(a, b complex128, tol float64) bool {
	return cmplx.Abs(a-b) <= tol
}

func TestForwardRejectsNonPowerOfTwo(t *testing.T) {
	for _, n := range []int{3, 5, 6, 7, 9, 100} {
		if err := Forward(make([]complex128, n)); err == nil {
			t.Errorf("length %d accepted", n)
		}
	}
}

func TestForwardTrivialLengths(t *testing.T) {
	if err := Forward(nil); err != nil {
		t.Errorf("empty: %v", err)
	}
	one := []complex128{3 + 4i}
	if err := Forward(one); err != nil || one[0] != 3+4i {
		t.Errorf("length 1 changed: %v %v", one, err)
	}
}

func TestForwardKnownDelta(t *testing.T) {
	// DFT of a delta at 0 is all ones.
	x := make([]complex128, 8)
	x[0] = 1
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		if !almostEqual(v, 1, 1e-12) {
			t.Errorf("X[%d] = %v, want 1", i, v)
		}
	}
}

func TestForwardKnownCosine(t *testing.T) {
	// cos(2π k0 t / N) has spikes of N/2 at bins ±k0.
	const n, k0 = 16, 3
	x := make([]complex128, n)
	for i := range x {
		x[i] = complex(math.Cos(2*math.Pi*k0*float64(i)/n), 0)
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	for i, v := range x {
		want := complex(0, 0)
		if i == k0 || i == n-k0 {
			want = complex(n/2, 0)
		}
		if !almostEqual(v, want, 1e-9) {
			t.Errorf("X[%d] = %v, want %v", i, v, want)
		}
	}
}

func TestRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	x := make([]complex128, 256)
	orig := make([]complex128, len(x))
	for i := range x {
		x[i] = complex(rng.NormFloat64(), rng.NormFloat64())
		orig[i] = x[i]
	}
	if err := Forward(x); err != nil {
		t.Fatal(err)
	}
	if err := Inverse(x); err != nil {
		t.Fatal(err)
	}
	for i := range x {
		if !almostEqual(x[i], orig[i], 1e-10) {
			t.Fatalf("round trip lost x[%d]: %v vs %v", i, x[i], orig[i])
		}
	}
}

func TestQuickParseval(t *testing.T) {
	// Parseval: sum |x|^2 == (1/N) sum |X|^2.
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		x := make([]complex128, 64)
		var tdEnergy float64
		for i := range x {
			x[i] = complex(rng.NormFloat64(), 0)
			tdEnergy += real(x[i]) * real(x[i])
		}
		if err := Forward(x); err != nil {
			return false
		}
		var fdEnergy float64
		for _, v := range x {
			fdEnergy += real(v)*real(v) + imag(v)*imag(v)
		}
		return math.Abs(tdEnergy-fdEnergy/64) < 1e-8*(1+tdEnergy)
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 50}); err != nil {
		t.Error(err)
	}
}

func TestLinearity(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	a := make([]complex128, 32)
	b := make([]complex128, 32)
	sum := make([]complex128, 32)
	for i := range a {
		a[i] = complex(rng.NormFloat64(), 0)
		b[i] = complex(rng.NormFloat64(), 0)
		sum[i] = 2*a[i] + 3*b[i]
	}
	Forward(a)
	Forward(b)
	Forward(sum)
	for i := range sum {
		if !almostEqual(sum[i], 2*a[i]+3*b[i], 1e-9) {
			t.Fatalf("linearity violated at %d", i)
		}
	}
}

func TestNewCubeValidation(t *testing.T) {
	for _, n := range []int{0, -4, 3, 12} {
		if _, err := NewCube(n); err == nil {
			t.Errorf("NewCube(%d) accepted", n)
		}
	}
	c, err := NewCube(8)
	if err != nil {
		t.Fatal(err)
	}
	if c.N() != 8 || len(c.Data()) != 512 {
		t.Error("cube geometry wrong")
	}
}

func TestCubeAtSet(t *testing.T) {
	c, _ := NewCube(4)
	c.Set(1, 2, 3, 5+6i)
	if c.At(1, 2, 3) != 5+6i {
		t.Error("At/Set mismatch")
	}
	// x-fastest layout.
	if c.Data()[(3*4+2)*4+1] != 5+6i {
		t.Error("layout not x-fastest")
	}
	c.Clear()
	if c.At(1, 2, 3) != 0 {
		t.Error("Clear failed")
	}
}

func TestCube3DRoundTrip(t *testing.T) {
	c, _ := NewCube(8)
	rng := rand.New(rand.NewSource(11))
	orig := make([]complex128, len(c.Data()))
	for i := range c.Data() {
		c.Data()[i] = complex(rng.NormFloat64(), 0)
		orig[i] = c.Data()[i]
	}
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	if err := c.Inverse3D(); err != nil {
		t.Fatal(err)
	}
	for i := range orig {
		if !almostEqual(c.Data()[i], orig[i], 1e-9) {
			t.Fatalf("3D round trip lost element %d", i)
		}
	}
}

func TestCube3DDelta(t *testing.T) {
	// 3-D DFT of a delta at the origin is all ones.
	c, _ := NewCube(4)
	c.Set(0, 0, 0, 1)
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	for i, v := range c.Data() {
		if !almostEqual(v, 1, 1e-12) {
			t.Fatalf("element %d = %v, want 1", i, v)
		}
	}
}

func TestCube3DPlaneWave(t *testing.T) {
	// A plane wave exp(2πi·k·r/n) transforms to a single spike of n^3.
	const n = 8
	c, _ := NewCube(n)
	kx, ky, kz := 2, 1, 3
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				ph := 2 * math.Pi * float64(kx*x+ky*y+kz*z) / n
				c.Set(x, y, z, cmplx.Exp(complex(0, ph)))
			}
		}
	}
	if err := c.Forward3D(); err != nil {
		t.Fatal(err)
	}
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				want := complex(0, 0)
				if x == kx && y == ky && z == kz {
					want = complex(n*n*n, 0)
				}
				if !almostEqual(c.At(x, y, z), want, 1e-7) {
					t.Fatalf("X[%d,%d,%d] = %v, want %v", x, y, z, c.At(x, y, z), want)
				}
			}
		}
	}
}

func BenchmarkForward1K(b *testing.B) {
	x := make([]complex128, 1024)
	for i := range x {
		x[i] = complex(float64(i), 0)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := Forward(x); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCube32Forward(b *testing.B) {
	c, _ := NewCube(32)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := c.Forward3D(); err != nil {
			b.Fatal(err)
		}
	}
}
