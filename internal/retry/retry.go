// Package retry is the single home for error classification and
// retry/backoff policy in this repository (the retryloop lint rule forbids
// ad-hoc retry loops anywhere else).
//
// Two properties distinguish it from a generic retry helper:
//
//   - Classification is explicit. An error is retried only if something on
//     its chain opted in via Mark (or implements RetryClass). Unclassified
//     errors default to Permanent, so injected test faults and logic bugs
//     propagate exactly as before retry existed.
//
//   - Backoff is virtual. Policy never sleeps on the wall clock; it returns
//     the deterministic backoff duration it *would* have waited, and the
//     caller accounts it in simclock virtual time. Runs are bit-identical
//     across machines and the walltime lint rule stays clean.
package retry

import (
	"context"
	"errors"
	"fmt"
	"time"
)

// Class partitions errors by how the degradation ladder should respond.
type Class int

const (
	// Permanent errors are never retried; they propagate to the caller
	// (or, one rung up the ladder, degrade the affected pair).
	Permanent Class = iota
	// Transient errors (PFS hiccups, ring pressure) are retried under the
	// governing Policy.
	Transient
	// Corrupt errors mean bytes were read successfully but failed an
	// integrity check. They earn exactly one re-read, never backoff:
	// the storage call succeeded, so waiting longer cannot help.
	Corrupt
)

// String returns the lower-case class name used in reports and logs.
func (c Class) String() string {
	switch c {
	case Transient:
		return "transient"
	case Corrupt:
		return "corrupt"
	default:
		return "permanent"
	}
}

// Classer is implemented by errors that carry their own retry class.
type Classer interface {
	RetryClass() Class
}

type classed struct {
	err   error
	class Class
}

func (e *classed) Error() string     { return e.class.String() + ": " + e.err.Error() }
func (e *classed) Unwrap() error     { return e.err }
func (e *classed) RetryClass() Class { return e.class }

// Mark wraps err with an explicit retry class. Marking nil returns nil.
func Mark(err error, c Class) error {
	if err == nil {
		return nil
	}
	return &classed{err: err, class: c}
}

// Classify reports the retry class of err. Context cancellation and
// deadline expiry are Permanent regardless of wrapping: the caller is
// leaving, so retrying on its behalf is never correct. Otherwise the first
// Classer on the chain wins, and unclassified errors are Permanent.
func Classify(err error) Class {
	if err == nil {
		return Permanent
	}
	if errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded) {
		return Permanent
	}
	var c Classer
	if errors.As(err, &c) {
		return c.RetryClass()
	}
	return Permanent
}

// IsTransient reports whether err classifies as Transient.
func IsTransient(err error) bool { return Classify(err) == Transient }

// IsCorrupt reports whether err classifies as Corrupt.
func IsCorrupt(err error) bool { return Classify(err) == Corrupt }

// exhausted demotes a Transient error to Permanent once its retry budget is
// spent, so an outer policy (e.g. the engine's per-step retry) does not
// multiply attempts against an inner one.
type exhausted struct {
	err      error
	attempts int
}

func (e *exhausted) Error() string {
	return fmt.Sprintf("retry exhausted after %d attempts: %v", e.attempts, e.err)
}
func (e *exhausted) Unwrap() error     { return e.err }
func (e *exhausted) RetryClass() Class { return Permanent }

// Exhausted wraps err as Permanent, recording how many attempts were made.
func Exhausted(err error, attempts int) error {
	if err == nil {
		return nil
	}
	return &exhausted{err: err, attempts: attempts}
}

// Policy is a capped exponential backoff with deterministic jitter. The
// zero value disables retries (single attempt, no backoff).
type Policy struct {
	// MaxAttempts is the total attempt budget including the first try.
	// Values <= 1 mean "no retries".
	MaxAttempts int
	// BaseDelay is the backoff before the first retry.
	BaseDelay time.Duration
	// MaxDelay caps the exponential growth. Zero means uncapped.
	MaxDelay time.Duration
	// Multiplier scales the delay between consecutive retries.
	// Values < 1 are treated as 2.
	Multiplier float64
	// Seed keys the deterministic jitter stream. Two policies with the
	// same parameters and seed produce identical backoff sequences.
	Seed uint64
}

// Default is the policy applied by compare.Options when none is set:
// three attempts with 2ms → 8ms virtual backoff, jitter seeded by the
// policy parameters alone.
func Default() Policy {
	return Policy{MaxAttempts: 3, BaseDelay: 2 * time.Millisecond, MaxDelay: 250 * time.Millisecond, Multiplier: 4}
}

// Enabled reports whether the policy allows at least one retry.
func (p Policy) Enabled() bool { return p.MaxAttempts > 1 }

// splitmix64 is the same tiny deterministic PRNG used by internal/synth.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// Next returns the virtual backoff to charge before retry number `retry`
// (1-based: the backoff between attempt N and attempt N+1 is Next(N)), and
// whether the attempt budget allows that retry at all. The jitter is a
// deterministic ±25% drawn from splitmix64(Seed, retry), so a given
// (policy, seed) pair prices identically on every run and machine.
func (p Policy) Next(retry int) (time.Duration, bool) {
	if retry < 1 || retry >= p.MaxAttempts {
		return 0, false
	}
	d := float64(p.BaseDelay)
	mult := p.Multiplier
	//lint:ignore epsflow sanity floor on a config multiplier, not an ε-sensitive comparison
	if mult < 1 {
		mult = 2
	}
	for i := 1; i < retry; i++ {
		d *= mult
		//lint:ignore floatcmp delay-cap saturation, not an ε-sensitive equality
		if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
			d = float64(p.MaxDelay)
			break
		}
	}
	//lint:ignore floatcmp delay-cap saturation, not an ε-sensitive equality
	if p.MaxDelay > 0 && d > float64(p.MaxDelay) {
		d = float64(p.MaxDelay)
	}
	// ±25% jitter in 1/1024 steps: factor in [0.75, 1.25).
	r := splitmix64(p.Seed ^ uint64(retry)*0x9e3779b97f4a7c15)
	factor := 0.75 + float64(r%1024)/2048
	return time.Duration(d * factor), true
}

// Do runs fn up to MaxAttempts times, retrying only errors that classify
// Transient. It returns the total *virtual* backoff accrued (the caller
// charges it to simclock; Do itself never sleeps) and the final error.
// Corrupt and Permanent errors return immediately. When the budget is
// spent on a still-Transient error, the error is wrapped with Exhausted so
// outer policies see it as Permanent. Do stops early if ctx is done.
func (p Policy) Do(ctx context.Context, fn func(attempt int) error) (time.Duration, error) {
	var backoff time.Duration
	attempts := p.MaxAttempts
	if attempts < 1 {
		attempts = 1
	}
	for attempt := 0; ; attempt++ {
		if err := ctx.Err(); err != nil {
			return backoff, err
		}
		err := fn(attempt)
		if err == nil || Classify(err) != Transient {
			return backoff, err
		}
		d, ok := p.Next(attempt + 1)
		if !ok {
			return backoff, Exhausted(err, attempt+1)
		}
		backoff += d
	}
}
