package retry

import (
	"context"
	"errors"
	"fmt"
	"testing"
	"time"
)

func TestClassifyDefaultsPermanent(t *testing.T) {
	if got := Classify(errors.New("disk on fire")); got != Permanent {
		t.Fatalf("unclassified error: got %v, want Permanent", got)
	}
	if got := Classify(nil); got != Permanent {
		t.Fatalf("nil error: got %v, want Permanent", got)
	}
}

func TestMarkRoundTrips(t *testing.T) {
	base := errors.New("eio")
	for _, c := range []Class{Transient, Permanent, Corrupt} {
		err := Mark(base, c)
		if got := Classify(err); got != c {
			t.Fatalf("Classify(Mark(err, %v)) = %v", c, got)
		}
		if !errors.Is(err, base) {
			t.Fatalf("Mark(%v) broke the error chain", c)
		}
	}
	if Mark(nil, Transient) != nil {
		t.Fatal("Mark(nil) should be nil")
	}
}

func TestClassifySurvivesWrapping(t *testing.T) {
	err := fmt.Errorf("pfs: read x@0: %w", Mark(errors.New("flaky"), Transient))
	if !IsTransient(err) {
		t.Fatal("fmt.Errorf wrapping should preserve the class")
	}
}

func TestContextErrorsArePermanent(t *testing.T) {
	err := Mark(fmt.Errorf("wrapped: %w", context.Canceled), Transient)
	if Classify(err) != Permanent {
		t.Fatal("context.Canceled must classify Permanent even when marked Transient")
	}
	if Classify(context.DeadlineExceeded) != Permanent {
		t.Fatal("DeadlineExceeded must classify Permanent")
	}
}

func TestExhaustedDemotesToPermanent(t *testing.T) {
	base := Mark(errors.New("flaky"), Transient)
	err := Exhausted(base, 3)
	if Classify(err) != Permanent {
		t.Fatalf("Exhausted error should classify Permanent, got %v", Classify(err))
	}
	if !errors.Is(err, base) {
		t.Fatal("Exhausted broke the error chain")
	}
}

func TestNextSequenceDeterministic(t *testing.T) {
	p := Policy{MaxAttempts: 5, BaseDelay: 2 * time.Millisecond, MaxDelay: 20 * time.Millisecond, Multiplier: 4, Seed: 7}
	var a, b []time.Duration
	for i := 1; i < 6; i++ {
		d, ok := p.Next(i)
		if i < 5 && !ok {
			t.Fatalf("Next(%d) should be allowed", i)
		}
		if i == 5 && ok {
			t.Fatal("Next(5) exceeds MaxAttempts=5 budget")
		}
		a = append(a, d)
	}
	for i := 1; i < 6; i++ {
		d, _ := p.Next(i)
		b = append(b, d)
	}
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("backoff not deterministic at retry %d: %v vs %v", i+1, a[i], b[i])
		}
	}
	// Jitter stays within ±25% of the nominal exponential value.
	nominal := []time.Duration{2 * time.Millisecond, 8 * time.Millisecond, 20 * time.Millisecond, 20 * time.Millisecond}
	for i, n := range nominal {
		lo, hi := time.Duration(float64(n)*0.75), time.Duration(float64(n)*1.25)
		if a[i] < lo || a[i] > hi {
			t.Fatalf("retry %d backoff %v outside [%v, %v]", i+1, a[i], lo, hi)
		}
	}
}

func TestZeroPolicyDisablesRetry(t *testing.T) {
	var p Policy
	if p.Enabled() {
		t.Fatal("zero policy should not be Enabled")
	}
	calls := 0
	_, err := p.Do(context.Background(), func(int) error {
		calls++
		return Mark(errors.New("flaky"), Transient)
	})
	if calls != 1 {
		t.Fatalf("zero policy made %d attempts, want 1", calls)
	}
	if Classify(err) != Permanent {
		t.Fatal("spent budget should surface as Permanent (Exhausted)")
	}
}

func TestDoRetriesOnlyTransient(t *testing.T) {
	p := Policy{MaxAttempts: 4, BaseDelay: time.Millisecond, Multiplier: 2}
	calls := 0
	backoff, err := p.Do(context.Background(), func(attempt int) error {
		calls++
		if attempt < 2 {
			return Mark(errors.New("flaky"), Transient)
		}
		return nil
	})
	if err != nil || calls != 3 {
		t.Fatalf("got err=%v calls=%d, want success on attempt 3", err, calls)
	}
	if backoff <= 0 {
		t.Fatal("successful retries must still charge virtual backoff")
	}

	calls = 0
	perm := errors.New("logic bug")
	_, err = p.Do(context.Background(), func(int) error { calls++; return perm })
	if calls != 1 || !errors.Is(err, perm) {
		t.Fatalf("permanent error retried: calls=%d err=%v", calls, err)
	}

	calls = 0
	_, err = p.Do(context.Background(), func(int) error { calls++; return Mark(errors.New("bad bytes"), Corrupt) })
	if calls != 1 || !IsCorrupt(err) {
		t.Fatalf("corrupt error must not be retried by Do: calls=%d err=%v", calls, err)
	}
}

func TestDoExhaustsBudget(t *testing.T) {
	p := Policy{MaxAttempts: 3, BaseDelay: time.Millisecond, Multiplier: 2}
	calls := 0
	flaky := Mark(errors.New("flaky"), Transient)
	backoff, err := p.Do(context.Background(), func(int) error { calls++; return flaky })
	if calls != 3 {
		t.Fatalf("made %d attempts, want 3", calls)
	}
	if Classify(err) != Permanent || !errors.Is(err, flaky) {
		t.Fatalf("exhausted error should be Permanent and keep the chain: %v", err)
	}
	d1, _ := p.Next(1)
	d2, _ := p.Next(2)
	if backoff != d1+d2 {
		t.Fatalf("backoff %v, want Next(1)+Next(2) = %v", backoff, d1+d2)
	}
}

func TestDoHonorsContext(t *testing.T) {
	ctx, cancel := context.WithCancel(context.Background())
	p := Policy{MaxAttempts: 10, BaseDelay: time.Millisecond, Multiplier: 2}
	calls := 0
	_, err := p.Do(ctx, func(int) error {
		calls++
		cancel()
		return Mark(errors.New("flaky"), Transient)
	})
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("want context.Canceled, got %v", err)
	}
	if calls != 1 {
		t.Fatalf("made %d attempts after cancel, want 1", calls)
	}
}

func TestClassString(t *testing.T) {
	if Transient.String() != "transient" || Permanent.String() != "permanent" || Corrupt.String() != "corrupt" {
		t.Fatal("Class.String mismatch")
	}
}
