package hacc

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

func parallelConfig(particles int) Config {
	cfg := DefaultConfig(particles)
	cfg.Grid = 16
	cfg.Box = 16
	return cfg
}

// runParallel executes a parallel simulation and returns every rank's
// shard snapshot at the end.
func runParallel(t *testing.T, cfg Config, ranks, steps int) [][][]byte {
	t.Helper()
	shards := make([][][]byte, ranks)
	var mu sync.Mutex
	err := mpi.Run(ranks, func(r *mpi.Rank) error {
		sim, err := NewRankSim(cfg, r)
		if err != nil {
			return err
		}
		for s := 0; s < steps; s++ {
			if err := sim.Step(); err != nil {
				return err
			}
		}
		shard, err := sim.SnapshotShard()
		if err != nil {
			return err
		}
		mu.Lock()
		shards[r.ID()] = shard
		mu.Unlock()
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	return shards
}

func TestNewRankSimValidation(t *testing.T) {
	err := mpi.Run(2, func(r *mpi.Rank) error {
		bad := parallelConfig(100)
		bad.Grid = 12
		if _, err := NewRankSim(bad, r); err == nil {
			return fmt.Errorf("invalid grid accepted")
		}
		// Slab narrower than the cutoff must be rejected: cutoff 2 cells
		// = 2.0 box units; with 16 ranks the slab is 1.0 wide.
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	err = mpi.Run(16, func(r *mpi.Rank) error {
		if _, err := NewRankSim(parallelConfig(100), r); err == nil {
			return fmt.Errorf("cutoff wider than slab accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	// Single-rank parallel simulations are rejected (use Sim).
	err = mpi.Run(1, func(r *mpi.Rank) error {
		if _, err := NewRankSim(parallelConfig(100), r); err == nil {
			return fmt.Errorf("1-rank parallel sim accepted")
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelConservesParticles(t *testing.T) {
	cfg := parallelConfig(500)
	const ranks = 4
	counts := make([]int, ranks)
	err := mpi.Run(ranks, func(r *mpi.Rank) error {
		sim, err := NewRankSim(cfg, r)
		if err != nil {
			return err
		}
		for s := 0; s < 5; s++ {
			if err := sim.Step(); err != nil {
				return err
			}
		}
		counts[r.ID()] = sim.LocalParticles()
		// Every local particle must be inside the slab after migration.
		for i := range sim.ids {
			if sim.pz[i] < sim.slabLo || sim.pz[i] >= sim.slabHi {
				return fmt.Errorf("rank %d: particle %d at z=%v outside slab [%v,%v)",
					r.ID(), sim.ids[i], sim.pz[i], sim.slabLo, sim.slabHi)
			}
		}
		// Local IDs are sorted and unique.
		for i := 1; i < len(sim.ids); i++ {
			if sim.ids[i] <= sim.ids[i-1] {
				return fmt.Errorf("rank %d: ids not strictly sorted at %d", r.ID(), i)
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	total := 0
	for _, c := range counts {
		total += c
	}
	if total != cfg.Particles {
		t.Errorf("particles after migration: %d, want %d", total, cfg.Particles)
	}
}

func TestParallelDeterministic(t *testing.T) {
	cfg := parallelConfig(400)
	a := runParallel(t, cfg, 2, 4)
	b := runParallel(t, cfg, 2, 4)
	for rank := range a {
		for f := range a[rank] {
			for i := range a[rank][f] {
				if a[rank][f][i] != b[rank][f][i] {
					t.Fatalf("deterministic parallel runs differ at rank %d field %d", rank, f)
				}
			}
		}
	}
}

// readF32 decodes element i of a raw float32 buffer.
func readF32(b []byte, i int) float64 {
	return float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
}

func TestParallelMatchesSerialPhysics(t *testing.T) {
	cfg := parallelConfig(400)
	const steps = 3
	// Serial reference.
	serial, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := serial.Run(steps); err != nil {
		t.Fatal(err)
	}
	ref := serial.Snapshot()

	// Parallel: concatenate shards in ID order = global order.
	shards := runParallel(t, cfg, 2, steps)
	for f := 0; f < len(FieldNames); f++ {
		idx := 0
		var maxDiff float64
		for rank := range shards {
			buf := shards[rank][f]
			for i := 0; i < len(buf)/4; i++ {
				d := math.Abs(readF32(buf, i) - readF32(ref[f], idx))
				// Positions wrap: treat across-the-box differences via
				// minimum image on coordinate fields.
				if f < 3 && d > cfg.Box/2 {
					d = cfg.Box - d
				}
				if d > maxDiff {
					maxDiff = d
				}
				idx++
			}
		}
		// FP summation order differs between decompositions; physics must
		// agree to far better than the box scale after a few steps.
		if maxDiff > 0.02 {
			t.Errorf("field %s: parallel vs serial max diff %v", FieldNames[f], maxDiff)
		}
	}
}

func TestParallelNondetRunsDiverge(t *testing.T) {
	cfg := parallelConfig(400)
	cfg.Nondet = true
	cfg.NondetSeed = 1
	a := runParallel(t, cfg, 2, 6)
	cfg.NondetSeed = 2
	b := runParallel(t, cfg, 2, 6)
	diff := false
	for rank := range a {
		for f := range a[rank] {
			for i := range a[rank][f] {
				if a[rank][f][i] != b[rank][f][i] {
					diff = true
				}
			}
		}
	}
	if !diff {
		t.Error("nondeterministic parallel runs with different seeds are identical")
	}
}

func TestShardRangesPartitionPopulation(t *testing.T) {
	cfg := parallelConfig(401) // non-divisible count: last rank absorbs the remainder
	const ranks = 3
	err := mpi.Run(ranks, func(r *mpi.Rank) error {
		sim, err := NewRankSim(cfg, r)
		if err != nil {
			return err
		}
		lo, hi := sim.ShardRange()
		if r.ID() == 0 && lo != 0 {
			return fmt.Errorf("rank 0 shard starts at %d", lo)
		}
		if r.ID() == ranks-1 && hi != int64(cfg.Particles) {
			return fmt.Errorf("last shard ends at %d", hi)
		}
		shard, err := sim.SnapshotShard()
		if err != nil {
			return err
		}
		if int64(len(shard[0])/4) != hi-lo {
			return fmt.Errorf("shard size %d, want %d", len(shard[0])/4, hi-lo)
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
}

func TestParallelCaptureEndToEnd(t *testing.T) {
	cfg := parallelConfig(300)
	cfg.Nondet = true
	cfg.NondetSeed = 7
	local, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := ckpt.NewCheckpointer(local, remote, 2)
	const ranks = 2
	err = mpi.Run(ranks, func(r *mpi.Rank) error {
		sim, err := NewRankSim(cfg, r)
		if err != nil {
			return err
		}
		for s := 1; s <= 4; s++ {
			if err := sim.Step(); err != nil {
				return err
			}
			if s%2 == 0 {
				if err := sim.Capture(c, "par-run"); err != nil {
					return err
				}
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if err := c.Close(); err != nil {
		t.Fatal(err)
	}
	hist, err := ckpt.History(remote, "par-run")
	if err != nil {
		t.Fatal(err)
	}
	if len(hist) != 4 { // 2 iterations × 2 ranks
		t.Fatalf("history = %v", hist)
	}
	// Both ranks' shards at one iteration reassemble the full population.
	var totalElems int64
	for _, name := range hist[:2] {
		r, _, err := ckpt.OpenReader(remote, name)
		if err != nil {
			t.Fatal(err)
		}
		totalElems += r.Field(0).Count
		r.Close()
	}
	if totalElems != int64(cfg.Particles) {
		t.Errorf("shards cover %d particles, want %d", totalElems, cfg.Particles)
	}
}
