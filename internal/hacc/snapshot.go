package hacc

import (
	"encoding/binary"
	"math"

	"repro/internal/ckpt"
	"repro/internal/errbound"
)

// FieldNames lists the checkpointed variables in Table 1 order.
var FieldNames = []string{"x", "y", "z", "vx", "vy", "vz", "phi"}

// Schema returns the checkpoint field specs for a particle count, matching
// the paper's Table 1 (seven float32 fields per particle).
func Schema(particles int) []ckpt.FieldSpec {
	fields := make([]ckpt.FieldSpec, 0, len(FieldNames))
	for _, n := range FieldNames {
		fields = append(fields, ckpt.FieldSpec{
			Name:  n,
			DType: errbound.Float32,
			Count: int64(particles),
		})
	}
	return fields
}

// CheckpointBytes returns the raw checkpoint size for a particle count.
func CheckpointBytes(particles int) int64 {
	return int64(len(FieldNames)) * int64(particles) * 4
}

// Snapshot captures the current particle state as the raw little-endian
// float32 field buffers of a checkpoint, in FieldNames order.
func (s *Sim) Snapshot() [][]byte {
	n := s.cfg.Particles
	sources := [][]float64{s.px, s.py, s.pz, s.vx, s.vy, s.vz, s.phi}
	out := make([][]byte, len(sources))
	for fi, src := range sources {
		b := make([]byte, 4*n)
		for i := 0; i < n; i++ {
			binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(float32(src[i])))
		}
		out[fi] = b
	}
	return out
}

// CheckpointMeta builds the checkpoint identity for the current iteration.
func (s *Sim) CheckpointMeta(runID string, rank int) ckpt.Meta {
	return ckpt.Meta{
		RunID:     runID,
		Iteration: s.step,
		Rank:      rank,
		Fields:    Schema(s.cfg.Particles),
	}
}

// Capture snapshots the simulation and hands the checkpoint to a
// checkpointer (asynchronous two-tier capture, the paper's VELOC flow).
func (s *Sim) Capture(c *ckpt.Checkpointer, runID string, rank int) error {
	return c.Capture(s.CheckpointMeta(runID, rank), s.Snapshot())
}
