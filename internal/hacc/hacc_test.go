package hacc

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/errbound"
	"repro/internal/pfs"
)

func smallConfig() Config {
	cfg := DefaultConfig(512)
	cfg.Grid = 16
	cfg.Box = 16
	return cfg
}

func TestConfigValidate(t *testing.T) {
	good := smallConfig()
	if err := good.Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []func(*Config){
		func(c *Config) { c.Particles = 0 },
		func(c *Config) { c.Grid = 12 },
		func(c *Config) { c.Grid = 0 },
		func(c *Config) { c.Box = 0 },
		func(c *Config) { c.DT = 0 },
		func(c *Config) { c.Cutoff = -1 },
		func(c *Config) { c.Softening = 0 },
	}
	for i, mut := range cases {
		c := smallConfig()
		mut(&c)
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
		if _, err := New(c); err == nil {
			t.Errorf("case %d: New accepted invalid config", i)
		}
	}
}

func TestDeterministicRunsAreIdentical(t *testing.T) {
	cfg := smallConfig()
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(5); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(5); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	for f := range sa {
		for i := range sa[f] {
			if sa[f][i] != sb[f][i] {
				t.Fatalf("deterministic runs diverged in field %s", FieldNames[f])
			}
		}
	}
	if a.Iteration() != 5 {
		t.Errorf("Iteration = %d", a.Iteration())
	}
}

// maxRelDiff returns the largest absolute difference between two float32
// field buffers.
func maxAbsDiff(a, b []byte) float64 {
	var m float64
	for i := 0; i+4 <= len(a); i += 4 {
		va := float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i:])))
		vb := float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i:])))
		if d := math.Abs(va - vb); d > m {
			m = d
		}
	}
	return m
}

func TestNondeterministicRunsDiverge(t *testing.T) {
	cfg := smallConfig()
	cfg.Nondet = true
	cfg.NondetSeed = 1
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	cfg.NondetSeed = 2
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := a.Run(10); err != nil {
		t.Fatal(err)
	}
	if err := b.Run(10); err != nil {
		t.Fatal(err)
	}
	sa, sb := a.Snapshot(), b.Snapshot()
	var diverged bool
	for f := range sa {
		if maxAbsDiff(sa[f], sb[f]) > 0 {
			diverged = true
		}
	}
	if !diverged {
		t.Error("nondeterministic runs with different seeds did not diverge")
	}
	// The divergence must start at rounding scale, far below the data
	// magnitude (box size ~16).
	if d := maxAbsDiff(sa[0], sb[0]); d > 1.0 {
		t.Errorf("position divergence %v too large after 10 steps", d)
	}
}

func TestDivergenceGrowsWithIterations(t *testing.T) {
	run := func(seed int64, steps int) [][]byte {
		cfg := smallConfig()
		cfg.Nondet = true
		cfg.NondetSeed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		if err := s.Run(steps); err != nil {
			t.Fatal(err)
		}
		return s.Snapshot()
	}
	early1, early2 := run(1, 2), run(2, 2)
	late1, late2 := run(1, 20), run(2, 20)
	dEarly := maxAbsDiff(early1[3], early2[3]) // vx
	dLate := maxAbsDiff(late1[3], late2[3])
	if dLate <= dEarly {
		t.Errorf("divergence did not grow: early=%g late=%g", dEarly, dLate)
	}
}

func TestParticlesStayInBox(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Particles; i++ {
		for _, v := range []float64{s.px[i], s.py[i], s.pz[i]} {
			if v < 0 || v >= cfg.Box {
				t.Fatalf("particle %d left the box: %v", i, v)
			}
		}
	}
}

func TestMomentumApproximatelyConserved(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	mom := func() (float64, float64, float64) {
		var x, y, z float64
		for i := 0; i < cfg.Particles; i++ {
			x += s.vx[i]
			y += s.vy[i]
			z += s.vz[i]
		}
		return x, y, z
	}
	x0, y0, z0 := mom()
	if err := s.Run(5); err != nil {
		t.Fatal(err)
	}
	x1, y1, z1 := mom()
	// CIC deposit/interp with the same kernel is momentum-conserving for
	// the mesh part; the PP cutoff force is pairwise antisymmetric. Allow
	// loose numerical drift.
	scale := 1.0
	for _, d := range []float64{x1 - x0, y1 - y0, z1 - z0} {
		if math.Abs(d) > 0.05*scale {
			t.Errorf("momentum drifted by %v", d)
		}
	}
}

func TestFiniteState(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := s.Run(10); err != nil {
		t.Fatal(err)
	}
	for i := 0; i < cfg.Particles; i++ {
		vals := []float64{s.px[i], s.py[i], s.pz[i], s.vx[i], s.vy[i], s.vz[i], s.phi[i]}
		for j, v := range vals {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				t.Fatalf("particle %d field %d is not finite: %v", i, j, v)
			}
		}
	}
}

func TestSchemaMatchesTable1(t *testing.T) {
	fields := Schema(100)
	if len(fields) != 7 {
		t.Fatalf("schema has %d fields", len(fields))
	}
	for i, want := range FieldNames {
		if fields[i].Name != want || fields[i].DType != errbound.Float32 || fields[i].Count != 100 {
			t.Errorf("field %d = %+v", i, fields[i])
		}
	}
	if CheckpointBytes(100) != 2800 {
		t.Errorf("CheckpointBytes(100) = %d", CheckpointBytes(100))
	}
}

func TestSnapshotAndCapture(t *testing.T) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap := s.Snapshot()
	if len(snap) != 7 {
		t.Fatalf("snapshot has %d fields", len(snap))
	}
	for f, b := range snap {
		if len(b) != 4*cfg.Particles {
			t.Errorf("field %s has %d bytes", FieldNames[f], len(b))
		}
	}
	// Capture through the async checkpointer and read back.
	local, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := ckpt.NewCheckpointer(local, remote, 1)
	defer c.Close()
	if err := s.Capture(c, "sim-run", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r, _, err := ckpt.OpenReader(remote, ckpt.Name("sim-run", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	got, _, err := r.ReadField(0)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(snap[0]) {
		t.Error("captured field size mismatch")
	}
	for i := range got {
		if got[i] != snap[0][i] {
			t.Fatal("captured bytes differ from snapshot")
		}
	}
}

func BenchmarkStep512Particles(b *testing.B) {
	cfg := smallConfig()
	s, err := New(cfg)
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if err := s.Step(); err != nil {
			b.Fatal(err)
		}
	}
}
