// Package hacc implements the simulation substrate of the evaluation: a
// particle-mesh N-body cosmology code modelled on HACC's P³M solver
// (paper §3.3.1). It produces the multi-iteration float32 particle
// checkpoints (coordinates, velocities, gravitational potential — Table 1)
// that the comparator is evaluated on.
//
// The solver is a standard simplified P³M:
//
//   - cloud-in-cell (CIC) mass deposit onto an n³ periodic mesh;
//   - FFT Poisson solve with the discrete-Laplacian Green's function;
//   - central-difference mesh forces, CIC-interpolated back to particles;
//   - a short-range particle-particle correction with a polynomial
//     cutoff inside a cell-list neighbourhood;
//   - kick-drift-kick leapfrog integration in a periodic box.
//
// Nondeterminism, the phenomenon the paper studies, is injected exactly
// where it arises in the real code: the order in which concurrent threads
// accumulate short-range force contributions. With Nondet enabled, each
// run shuffles the pair-accumulation order with its own seed and
// accumulates partial sums in float32, so two runs from identical initial
// conditions drift apart at floating-point rounding scale and the gap is
// amplified by the system's chaotic dynamics over iterations.
package hacc

import (
	"fmt"
	"math"
	"math/rand"

	"repro/internal/fft"
)

// Config parameterizes a simulation run.
type Config struct {
	// Particles is the particle count.
	Particles int
	// Grid is the mesh extent per axis (power of two).
	Grid int
	// Box is the box side length.
	Box float64
	// Seed seeds the initial conditions (identical across compared runs).
	Seed int64
	// DT is the leapfrog timestep.
	DT float64
	// Cutoff is the short-range PP radius in mesh-cell units.
	Cutoff float64
	// Softening is the Plummer softening length in mesh-cell units.
	Softening float64
	// Nondet enables nondeterministic force accumulation.
	Nondet bool
	// NondetSeed distinguishes runs (only used when Nondet is set).
	NondetSeed int64
}

// DefaultConfig returns a laptop-scale configuration with HACC-like
// parameter ratios.
func DefaultConfig(particles int) Config {
	return Config{
		Particles: particles,
		Grid:      32,
		Box:       32.0,
		Seed:      1,
		DT:        0.05,
		Cutoff:    2.0,
		Softening: 0.3,
	}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.Particles <= 0 {
		return fmt.Errorf("hacc: particles %d must be positive", c.Particles)
	}
	if c.Grid <= 0 || c.Grid&(c.Grid-1) != 0 {
		return fmt.Errorf("hacc: grid %d must be a power of two", c.Grid)
	}
	if c.Box <= 0 {
		return fmt.Errorf("hacc: box %v must be positive", c.Box)
	}
	if c.DT <= 0 {
		return fmt.Errorf("hacc: dt %v must be positive", c.DT)
	}
	if c.Cutoff < 0 || c.Softening <= 0 {
		return fmt.Errorf("hacc: cutoff %v / softening %v invalid", c.Cutoff, c.Softening)
	}
	return nil
}

// Sim is one running simulation.
type Sim struct {
	cfg  Config
	step int

	// Particle state (float64 internally; checkpoints are float32).
	px, py, pz []float64
	vx, vy, vz []float64
	ax, ay, az []float64
	phi        []float64 // per-particle potential, refreshed each force calc

	mesh   *fft.Cube
	fx     []float64 // mesh force fields
	fy     []float64
	fz     []float64
	greens []float64 // precomputed -1/k² (discrete), 0 at k=0

	rng *rand.Rand // nondeterminism source; nil when deterministic

	// cell list scratch
	cellHead []int
	cellNext []int
	order    []int
}

// New creates a simulation with Zel'dovich-like perturbed-lattice initial
// conditions derived deterministically from cfg.Seed.
func New(cfg Config) (*Sim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	mesh, err := fft.NewCube(cfg.Grid)
	if err != nil {
		return nil, err
	}
	n := cfg.Particles
	g := cfg.Grid
	s := &Sim{
		cfg:      cfg,
		px:       make([]float64, n),
		py:       make([]float64, n),
		pz:       make([]float64, n),
		vx:       make([]float64, n),
		vy:       make([]float64, n),
		vz:       make([]float64, n),
		ax:       make([]float64, n),
		ay:       make([]float64, n),
		az:       make([]float64, n),
		phi:      make([]float64, n),
		mesh:     mesh,
		fx:       make([]float64, g*g*g),
		fy:       make([]float64, g*g*g),
		fz:       make([]float64, g*g*g),
		greens:   greens(g, cfg.Box),
		cellHead: make([]int, g*g*g),
		cellNext: make([]int, n),
		order:    make([]int, n),
	}
	if cfg.Nondet {
		s.rng = rand.New(rand.NewSource(cfg.NondetSeed))
	}
	s.initialConditions()
	if err := s.computeForces(); err != nil {
		return nil, err
	}
	return s, nil
}

// initialConditions places particles on a jittered lattice with small
// correlated velocities, a cheap stand-in for Zel'dovich displacement.
func (s *Sim) initialConditions() {
	rng := rand.New(rand.NewSource(s.cfg.Seed))
	n := s.cfg.Particles
	// Lattice side: smallest cube covering n particles.
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := s.cfg.Box / float64(side)
	i := 0
	for z := 0; z < side && i < n; z++ {
		for y := 0; y < side && i < n; y++ {
			for x := 0; x < side && i < n; x++ {
				jit := spacing * 0.3
				s.px[i] = wrap((float64(x)+0.5)*spacing+rng.NormFloat64()*jit, s.cfg.Box)
				s.py[i] = wrap((float64(y)+0.5)*spacing+rng.NormFloat64()*jit, s.cfg.Box)
				s.pz[i] = wrap((float64(z)+0.5)*spacing+rng.NormFloat64()*jit, s.cfg.Box)
				vscale := spacing * 0.05
				s.vx[i] = rng.NormFloat64() * vscale
				s.vy[i] = rng.NormFloat64() * vscale
				s.vz[i] = rng.NormFloat64() * vscale
				i++
			}
		}
	}
}

// greens precomputes the discrete Green's function -1/k²_eff for the
// Poisson solve, matching the central-difference gradient.
func greens(n int, box float64) []float64 {
	h := box / float64(n)
	g := make([]float64, n*n*n)
	for z := 0; z < n; z++ {
		for y := 0; y < n; y++ {
			for x := 0; x < n; x++ {
				if x == 0 && y == 0 && z == 0 {
					continue // zero mode: mean subtracted
				}
				sx := math.Sin(math.Pi * float64(x) / float64(n))
				sy := math.Sin(math.Pi * float64(y) / float64(n))
				sz := math.Sin(math.Pi * float64(z) / float64(n))
				k2 := 4 / (h * h) * (sx*sx + sy*sy + sz*sz)
				g[(z*n+y)*n+x] = -1 / k2
			}
		}
	}
	return g
}

// Iteration returns the number of completed steps.
func (s *Sim) Iteration() int { return s.step }

// Config returns the simulation configuration.
func (s *Sim) Config() Config { return s.cfg }

// Step advances the simulation by one kick-drift-kick leapfrog step.
func (s *Sim) Step() error {
	n := s.cfg.Particles
	half := s.cfg.DT / 2
	for i := 0; i < n; i++ {
		s.vx[i] += s.ax[i] * half
		s.vy[i] += s.ay[i] * half
		s.vz[i] += s.az[i] * half
		s.px[i] = wrap(s.px[i]+s.vx[i]*s.cfg.DT, s.cfg.Box)
		s.py[i] = wrap(s.py[i]+s.vy[i]*s.cfg.DT, s.cfg.Box)
		s.pz[i] = wrap(s.pz[i]+s.vz[i]*s.cfg.DT, s.cfg.Box)
	}
	if err := s.computeForces(); err != nil {
		return err
	}
	for i := 0; i < n; i++ {
		s.vx[i] += s.ax[i] * half
		s.vy[i] += s.ay[i] * half
		s.vz[i] += s.az[i] * half
	}
	s.step++
	return nil
}

// Run advances the simulation by k steps.
func (s *Sim) Run(k int) error {
	for i := 0; i < k; i++ {
		if err := s.Step(); err != nil {
			return err
		}
	}
	return nil
}

// wrap maps x into [0, box).
func wrap(x, box float64) float64 {
	x = math.Mod(x, box)
	if x < 0 {
		x += box
	}
	return x
}
