package hacc

import (
	"testing"

	"repro/internal/ckpt"
	"repro/internal/pfs"
)

// captureAt runs a fresh sim to `steps` and captures a checkpoint.
func captureAt(t *testing.T, cfg Config, store *pfs.Store, runID string, steps int) *Sim {
	t.Helper()
	sim, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := sim.Run(steps); err != nil {
		t.Fatal(err)
	}
	if _, err := ckpt.WriteCheckpoint(store, sim.CheckpointMeta(runID, 0), sim.Snapshot()); err != nil {
		t.Fatal(err)
	}
	return sim
}

func TestRestoreResumesIteration(t *testing.T) {
	cfg := smallConfig()
	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	captureAt(t, cfg, store, "resume", 10)
	r, _, err := ckpt.OpenReader(store, ckpt.Name("resume", 10, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	restored, err := Restore(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if restored.Iteration() != 10 {
		t.Errorf("restored iteration = %d, want 10", restored.Iteration())
	}
	if restored.Config().Particles != cfg.Particles {
		t.Errorf("restored particles = %d", restored.Config().Particles)
	}
}

func TestRestoredRunTracksStraightRun(t *testing.T) {
	cfg := smallConfig()
	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	// Straight-through reference: 16 steps.
	straight, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if err := straight.Run(16); err != nil {
		t.Fatal(err)
	}
	// Suspended run: 8 steps, capture, restore, 8 more.
	captureAt(t, cfg, store, "sus", 8)
	r, _, err := ckpt.OpenReader(store, ckpt.Name("sus", 8, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	resumed, err := Restore(cfg, r)
	if err != nil {
		t.Fatal(err)
	}
	if err := resumed.Run(8); err != nil {
		t.Fatal(err)
	}
	if resumed.Iteration() != 16 {
		t.Fatalf("resumed iteration = %d", resumed.Iteration())
	}
	// The checkpoint stores float32 state, so the resumed trajectory
	// shadows the straight run within float32-seeded divergence, far
	// below the box scale after 8 chaotic steps.
	a, b := straight.Snapshot(), resumed.Snapshot()
	for f := range a {
		d := maxAbsDiff(a[f], b[f])
		if f < 3 && d > cfg.Box/2 {
			d = cfg.Box - d // periodic wrap on coordinates
		}
		if d > 0.05 {
			t.Errorf("field %s drifted %v after resume", FieldNames[f], d)
		}
	}
}

func TestRestoreRejectsWrongSchema(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	// A checkpoint with too few fields.
	meta := ckpt.Meta{RunID: "bad", Iteration: 0, Rank: 0, Fields: Schema(10)[:3]}
	data := [][]byte{make([]byte, 40), make([]byte, 40), make([]byte, 40)}
	if _, err := ckpt.WriteCheckpoint(store, meta, data); err != nil {
		t.Fatal(err)
	}
	r, _, err := ckpt.OpenReader(store, ckpt.Name("bad", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if _, err := Restore(smallConfig(), r); err == nil {
		t.Error("wrong schema accepted")
	}

	// Wrong field names.
	meta2 := ckpt.Meta{RunID: "bad2", Iteration: 0, Rank: 0, Fields: Schema(10)}
	meta2.Fields[0].Name = "qq"
	data2 := make([][]byte, 7)
	for i := range data2 {
		data2[i] = make([]byte, 40)
	}
	if _, err := ckpt.WriteCheckpoint(store, meta2, data2); err != nil {
		t.Fatal(err)
	}
	r2, _, err := ckpt.OpenReader(store, ckpt.Name("bad2", 0, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r2.Close()
	if _, err := Restore(smallConfig(), r2); err == nil {
		t.Error("wrong field name accepted")
	}
}
