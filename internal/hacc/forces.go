package hacc

import "math"

// computeForces refreshes per-particle accelerations and potentials with
// the P³M decomposition: particle-mesh long-range forces plus a
// short-range particle-particle correction within the cutoff.
func (s *Sim) computeForces() error {
	if err := s.meshForces(); err != nil {
		return err
	}
	s.shortRangeForces()
	return nil
}

// meshForces computes the PM contribution: CIC deposit, FFT Poisson solve,
// central-difference gradient, CIC interpolation back to the particles.
// It overwrites the acceleration and potential arrays.
func (s *Sim) meshForces() error {
	g := s.cfg.Grid
	h := s.cfg.Box / float64(g)
	s.mesh.Clear()
	depositCIC(s.mesh.Data(), g, h, s.px, s.py, s.pz)
	if err := solvePoisson(s.mesh, s.greens); err != nil {
		return err
	}
	gradientForces(s.mesh.Data(), s.fx, s.fy, s.fz, g, h)
	interpolateForces(s.mesh.Data(), s.fx, s.fy, s.fz, g, h,
		s.px, s.py, s.pz, s.ax, s.ay, s.az, s.phi)
	return nil
}

// depositCIC adds unit-mass cloud-in-cell contributions of all particles
// to the density mesh (real parts).
func depositCIC(data []complex128, g int, h float64, px, py, pz []float64) {
	for i := range px {
		i0, i1, wx0, wx1 := cicWeights(px[i], h, g)
		j0, j1, wy0, wy1 := cicWeights(py[i], h, g)
		k0, k1, wz0, wz1 := cicWeights(pz[i], h, g)
		data[(k0*g+j0)*g+i0] += complex(wx0*wy0*wz0, 0)
		data[(k0*g+j0)*g+i1] += complex(wx1*wy0*wz0, 0)
		data[(k0*g+j1)*g+i0] += complex(wx0*wy1*wz0, 0)
		data[(k0*g+j1)*g+i1] += complex(wx1*wy1*wz0, 0)
		data[(k1*g+j0)*g+i0] += complex(wx0*wy0*wz1, 0)
		data[(k1*g+j0)*g+i1] += complex(wx1*wy0*wz1, 0)
		data[(k1*g+j1)*g+i0] += complex(wx0*wy1*wz1, 0)
		data[(k1*g+j1)*g+i1] += complex(wx1*wy1*wz1, 0)
	}
}

// solvePoisson converts the density mesh into the potential mesh in place
// using the precomputed discrete Green's function.
func solvePoisson(mesh interface {
	Forward3D() error
	Inverse3D() error
	Data() []complex128
}, greens []float64) error {
	if err := mesh.Forward3D(); err != nil {
		return err
	}
	data := mesh.Data()
	for i := range data {
		data[i] *= complex(greens[i], 0)
	}
	return mesh.Inverse3D()
}

// gradientForces fills the mesh force fields F = -∇φ with central
// differences under periodic wrap.
func gradientForces(data []complex128, fx, fy, fz []float64, g int, h float64) {
	phiAt := func(x, y, z int) float64 {
		return real(data[((z&(g-1))*g+(y&(g-1)))*g+(x&(g-1))])
	}
	inv2h := 1 / (2 * h)
	for z := 0; z < g; z++ {
		for y := 0; y < g; y++ {
			for x := 0; x < g; x++ {
				idx := (z*g+y)*g + x
				fx[idx] = -(phiAt(x+1, y, z) - phiAt(x-1, y, z)) * inv2h
				fy[idx] = -(phiAt(x, y+1, z) - phiAt(x, y-1, z)) * inv2h
				fz[idx] = -(phiAt(x, y, z+1) - phiAt(x, y, z-1)) * inv2h
			}
		}
	}
}

// interpolateForces CIC-samples the mesh force and potential fields at the
// particle positions, overwriting ax/ay/az/phi.
func interpolateForces(data []complex128, fx, fy, fz []float64, g int, h float64,
	px, py, pz, ax, ay, az, phi []float64) {
	for i := range px {
		i0, i1, wx0, wx1 := cicWeights(px[i], h, g)
		j0, j1, wy0, wy1 := cicWeights(py[i], h, g)
		k0, k1, wz0, wz1 := cicWeights(pz[i], h, g)
		var axv, ayv, azv, phiv float64
		acc := func(ci, cj, ck int, w float64) {
			idx := (ck*g+cj)*g + ci
			axv += fx[idx] * w
			ayv += fy[idx] * w
			azv += fz[idx] * w
			phiv += real(data[idx]) * w
		}
		acc(i0, j0, k0, wx0*wy0*wz0)
		acc(i1, j0, k0, wx1*wy0*wz0)
		acc(i0, j1, k0, wx0*wy1*wz0)
		acc(i1, j1, k0, wx1*wy1*wz0)
		acc(i0, j0, k1, wx0*wy0*wz1)
		acc(i1, j0, k1, wx1*wy0*wz1)
		acc(i0, j1, k1, wx0*wy1*wz1)
		acc(i1, j1, k1, wx1*wy1*wz1)
		ax[i] = axv
		ay[i] = ayv
		az[i] = azv
		phi[i] = phiv
	}
}

// cicWeights returns the two neighbouring node indices and linear weights
// for a coordinate under periodic wrap.
func cicWeights(x, h float64, g int) (int, int, float64, float64) {
	u := x / h
	i := int(math.Floor(u))
	f := u - float64(i)
	i0 := i & (g - 1)
	i1 := (i + 1) & (g - 1)
	return i0, i1, 1 - f, f
}

// pairForce evaluates the short-range softened pair interaction with the
// polynomial cutoff: returns the force factor (multiplying the separation
// vector) and the potential contribution, or ok=false beyond the cutoff.
func pairForce(r2, rc, rc2, eps2 float64) (f, pot float64, ok bool) {
	//lint:ignore floatcmp exact cutoff test is part of the deterministic force law
	if r2 >= rc2 {
		return 0, 0, false
	}
	r := math.Sqrt(r2 + eps2)
	t := 1 - math.Sqrt(r2)/rc
	sfac := t * t
	return sfac / (r * r * r), -sfac / r, true
}

// shortRangeForces adds the PP correction inside the cutoff radius using a
// cell list. In nondeterministic mode the neighbour accumulation order is
// shuffled per step and partial sums are rounded to float32, emulating the
// thread-interleaving FP reordering of the real concurrent code.
func (s *Sim) shortRangeForces() {
	if s.cfg.Cutoff <= 0 {
		return
	}
	g := s.cfg.Grid
	h := s.cfg.Box / float64(g)
	rc := s.cfg.Cutoff * h
	rc2 := rc * rc
	eps := s.cfg.Softening * h
	eps2 := eps * eps
	n := s.cfg.Particles

	// Cell list at mesh resolution (cells are h wide; cutoff spans
	// ceil(Cutoff) cells in each direction).
	for i := range s.cellHead {
		s.cellHead[i] = -1
	}
	cellOf := func(i int) int {
		cx := int(s.px[i]/h) & (g - 1)
		cy := int(s.py[i]/h) & (g - 1)
		cz := int(s.pz[i]/h) & (g - 1)
		return (cz*g+cy)*g + cx
	}
	for i := 0; i < n; i++ {
		c := cellOf(i)
		s.cellNext[i] = s.cellHead[c]
		s.cellHead[c] = i
	}

	reach := int(math.Ceil(s.cfg.Cutoff))
	box := s.cfg.Box

	// Particle traversal order: shuffled in nondeterministic mode.
	for i := range s.order {
		s.order[i] = i
	}
	if s.rng != nil {
		s.rng.Shuffle(n, func(a, b int) { s.order[a], s.order[b] = s.order[b], s.order[a] })
	}

	scratch := make([]int, 0, 64)
	for _, i := range s.order {
		cx := int(s.px[i]/h) & (g - 1)
		cy := int(s.py[i]/h) & (g - 1)
		cz := int(s.pz[i]/h) & (g - 1)

		// Gather neighbour candidates.
		scratch = scratch[:0]
		for dz := -reach; dz <= reach; dz++ {
			for dy := -reach; dy <= reach; dy++ {
				for dx := -reach; dx <= reach; dx++ {
					c := (((cz+dz)&(g-1))*g+((cy+dy)&(g-1)))*g + ((cx + dx) & (g - 1))
					for j := s.cellHead[c]; j >= 0; j = s.cellNext[j] {
						if j != i {
							scratch = append(scratch, j)
						}
					}
				}
			}
		}
		if s.rng != nil {
			s.rng.Shuffle(len(scratch), func(a, b int) { scratch[a], scratch[b] = scratch[b], scratch[a] })
		}

		var sax, say, saz, sphi float64
		for _, j := range scratch {
			dx := minImage(s.px[j]-s.px[i], box)
			dy := minImage(s.py[j]-s.py[i], box)
			dz := minImage(s.pz[j]-s.pz[i], box)
			r2 := dx*dx + dy*dy + dz*dz
			f, pot, ok := pairForce(r2, rc, rc2, eps2)
			if !ok {
				continue
			}
			sax += f * dx
			say += f * dy
			saz += f * dz
			sphi += pot
			if s.rng != nil {
				// Concurrency-style FP reordering: partial sums live in
				// float32 registers on the device.
				sax = float64(float32(sax))
				say = float64(float32(say))
				saz = float64(float32(saz))
				sphi = float64(float32(sphi))
			}
		}
		s.ax[i] += sax
		s.ay[i] += say
		s.az[i] += saz
		s.phi[i] += sphi
	}
}

// minImage maps a separation onto the minimum periodic image.
func minImage(d, box float64) float64 {
	//lint:ignore floatcmp exact periodic wrap is part of the deterministic force law
	if d > box/2 {
		return d - box
	}
	//lint:ignore floatcmp exact periodic wrap is part of the deterministic force law
	if d < -box/2 {
		return d + box
	}
	return d
}
