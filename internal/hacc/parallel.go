package hacc

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"
	"sort"

	"repro/internal/ckpt"
	"repro/internal/fft"
	"repro/internal/mpi"
)

// RankSim is one rank of a domain-decomposed parallel simulation: the box
// is split into slabs along z, each rank owns the particles inside its
// slab, and ranks cooperate through the mpi substrate exactly like the
// paper's multi-rank HACC runs:
//
//   - after the drift, particles that crossed a slab boundary migrate to
//     their new owner (all-to-all exchange, then a sort by particle ID so
//     the local order — and therefore the physics — is deterministic);
//   - the PM density is deposited locally and summed across ranks with a
//     deterministic all-reduce; each rank then solves the (identical)
//     global Poisson problem and samples forces for its own particles;
//   - the short-range PP correction sees neighbouring ranks' boundary
//     particles through a halo exchange (shifted across the periodic
//     wrap).
//
// Checkpoints shard the global particle population by ID range, so every
// rank's checkpoint schema is identical across runs and iterations even
// though slab populations fluctuate — the alignment property the
// comparator requires.
type RankSim struct {
	cfg  Config
	r    *mpi.Rank
	step int

	slabLo, slabHi float64

	// Local particles, kept sorted by ID.
	ids                    []int64
	px, py, pz, vx, vy, vz []float64
	ax, ay, az, phi        []float64

	// Halo copies from neighbouring slabs (positions only).
	hpx, hpy, hpz []float64

	mesh   *fft.Cube
	fx     []float64
	fy     []float64
	fz     []float64
	greens []float64

	rng *rand.Rand
}

// Tags for the parallel exchanges.
const (
	tagMigrateBase = 100 // + destination rank
	tagHaloLeft    = 200
	tagHaloRight   = 201
)

// NewRankSim creates one rank of a parallel simulation. All ranks must
// use identical cfg. Requires at least 2 ranks (use Sim for serial runs)
// and a slab at least one cutoff radius wide.
func NewRankSim(cfg Config, r *mpi.Rank) (*RankSim, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	if r.Size() < 2 {
		return nil, fmt.Errorf("hacc: parallel simulation needs >= 2 ranks, got %d (use Sim)", r.Size())
	}
	slabW := cfg.Box / float64(r.Size())
	h := cfg.Box / float64(cfg.Grid)
	//lint:ignore floatcmp configuration validation; any consistent tie-break is acceptable
	if cfg.Cutoff*h > slabW {
		return nil, fmt.Errorf("hacc: cutoff %.3g exceeds slab width %.3g; use fewer ranks", cfg.Cutoff*h, slabW)
	}
	mesh, err := fft.NewCube(cfg.Grid)
	if err != nil {
		return nil, err
	}
	g := cfg.Grid
	s := &RankSim{
		cfg:    cfg,
		r:      r,
		slabLo: float64(r.ID()) * slabW,
		slabHi: float64(r.ID()+1) * slabW,
		mesh:   mesh,
		fx:     make([]float64, g*g*g),
		fy:     make([]float64, g*g*g),
		fz:     make([]float64, g*g*g),
		greens: greens(g, cfg.Box),
	}
	if cfg.Nondet {
		// Distinct stream per rank, shared base seed per run.
		s.rng = rand.New(rand.NewSource(cfg.NondetSeed*1_000_003 + int64(r.ID())))
	}
	s.initialConditions()
	if err := s.computeForces(); err != nil {
		return nil, err
	}
	return s, nil
}

// initialConditions replays the SAME global IC generation as the serial
// Sim (identical seed ⇒ identical global particle set), then keeps the
// slab's particles, remembering global indices as IDs.
func (s *RankSim) initialConditions() {
	tmp, ids := globalInitialConditions(s.cfg)
	for i, id := range ids {
		//lint:ignore epsflow slab ownership must partition exactly; an ε band would hand boundary particles to two ranks
		if tmp.pz[i] >= s.slabLo && tmp.pz[i] < s.slabHi {
			s.ids = append(s.ids, id)
			s.px = append(s.px, tmp.px[i])
			s.py = append(s.py, tmp.py[i])
			s.pz = append(s.pz, tmp.pz[i])
			s.vx = append(s.vx, tmp.vx[i])
			s.vy = append(s.vy, tmp.vy[i])
			s.vz = append(s.vz, tmp.vz[i])
		}
	}
	s.resizeDerived()
}

// globalICs holds the full-population initial state.
type globalICs struct {
	px, py, pz, vx, vy, vz []float64
}

// globalInitialConditions generates the same jittered lattice as
// Sim.initialConditions for a given config.
func globalInitialConditions(cfg Config) (globalICs, []int64) {
	rng := rand.New(rand.NewSource(cfg.Seed))
	n := cfg.Particles
	var g globalICs
	g.px = make([]float64, n)
	g.py = make([]float64, n)
	g.pz = make([]float64, n)
	g.vx = make([]float64, n)
	g.vy = make([]float64, n)
	g.vz = make([]float64, n)
	ids := make([]int64, n)
	side := int(math.Ceil(math.Cbrt(float64(n))))
	spacing := cfg.Box / float64(side)
	i := 0
	for z := 0; z < side && i < n; z++ {
		for y := 0; y < side && i < n; y++ {
			for x := 0; x < side && i < n; x++ {
				jit := spacing * 0.3
				g.px[i] = wrap((float64(x)+0.5)*spacing+rng.NormFloat64()*jit, cfg.Box)
				g.py[i] = wrap((float64(y)+0.5)*spacing+rng.NormFloat64()*jit, cfg.Box)
				g.pz[i] = wrap((float64(z)+0.5)*spacing+rng.NormFloat64()*jit, cfg.Box)
				vscale := spacing * 0.05
				g.vx[i] = rng.NormFloat64() * vscale
				g.vy[i] = rng.NormFloat64() * vscale
				g.vz[i] = rng.NormFloat64() * vscale
				ids[i] = int64(i)
				i++
			}
		}
	}
	return g, ids
}

func (s *RankSim) resizeDerived() {
	n := len(s.ids)
	s.ax = make([]float64, n)
	s.ay = make([]float64, n)
	s.az = make([]float64, n)
	s.phi = make([]float64, n)
}

// Iteration returns the completed step count.
func (s *RankSim) Iteration() int { return s.step }

// Rank returns the underlying communicator rank.
func (s *RankSim) Rank() *mpi.Rank { return s.r }

// LocalParticles returns how many particles the rank currently owns.
func (s *RankSim) LocalParticles() int { return len(s.ids) }

// Step advances one kick-drift-kick iteration with migration and
// collective force computation.
func (s *RankSim) Step() error {
	half := s.cfg.DT / 2
	for i := range s.ids {
		s.vx[i] += s.ax[i] * half
		s.vy[i] += s.ay[i] * half
		s.vz[i] += s.az[i] * half
		s.px[i] = wrap(s.px[i]+s.vx[i]*s.cfg.DT, s.cfg.Box)
		s.py[i] = wrap(s.py[i]+s.vy[i]*s.cfg.DT, s.cfg.Box)
		s.pz[i] = wrap(s.pz[i]+s.vz[i]*s.cfg.DT, s.cfg.Box)
	}
	if err := s.migrate(); err != nil {
		return err
	}
	if err := s.computeForces(); err != nil {
		return err
	}
	for i := range s.ids {
		s.vx[i] += s.ax[i] * half
		s.vy[i] += s.ay[i] * half
		s.vz[i] += s.az[i] * half
	}
	s.step++
	return nil
}

// particleRec is the wire format of one particle: id + 6 coordinates.
const particleRecBytes = 8 + 6*8

func packParticle(buf []byte, id int64, px, py, pz, vx, vy, vz float64) {
	binary.LittleEndian.PutUint64(buf[0:], uint64(id))
	binary.LittleEndian.PutUint64(buf[8:], math.Float64bits(px))
	binary.LittleEndian.PutUint64(buf[16:], math.Float64bits(py))
	binary.LittleEndian.PutUint64(buf[24:], math.Float64bits(pz))
	binary.LittleEndian.PutUint64(buf[32:], math.Float64bits(vx))
	binary.LittleEndian.PutUint64(buf[40:], math.Float64bits(vy))
	binary.LittleEndian.PutUint64(buf[48:], math.Float64bits(vz))
}

func unpackParticle(buf []byte) (id int64, px, py, pz, vx, vy, vz float64) {
	id = int64(binary.LittleEndian.Uint64(buf[0:]))
	px = math.Float64frombits(binary.LittleEndian.Uint64(buf[8:]))
	py = math.Float64frombits(binary.LittleEndian.Uint64(buf[16:]))
	pz = math.Float64frombits(binary.LittleEndian.Uint64(buf[24:]))
	vx = math.Float64frombits(binary.LittleEndian.Uint64(buf[32:]))
	vy = math.Float64frombits(binary.LittleEndian.Uint64(buf[40:]))
	vz = math.Float64frombits(binary.LittleEndian.Uint64(buf[48:]))
	return
}

// owner returns the slab rank owning a z coordinate.
func (s *RankSim) owner(z float64) int {
	p := s.r.Size()
	o := int(z / (s.cfg.Box / float64(p)))
	if o >= p {
		o = p - 1
	}
	if o < 0 {
		o = 0
	}
	return o
}

// migrate performs the all-to-all particle ownership exchange and re-sorts
// the local population by ID.
func (s *RankSim) migrate() error {
	p := s.r.Size()
	outgoing := make([][]byte, p)
	keep := 0
	for i := range s.ids {
		o := s.owner(s.pz[i])
		if o == s.r.ID() {
			s.ids[keep] = s.ids[i]
			s.px[keep] = s.px[i]
			s.py[keep] = s.py[i]
			s.pz[keep] = s.pz[i]
			s.vx[keep] = s.vx[i]
			s.vy[keep] = s.vy[i]
			s.vz[keep] = s.vz[i]
			keep++
			continue
		}
		var rec [particleRecBytes]byte
		packParticle(rec[:], s.ids[i], s.px[i], s.py[i], s.pz[i], s.vx[i], s.vy[i], s.vz[i])
		outgoing[o] = append(outgoing[o], rec[:]...)
	}
	s.truncate(keep)

	// All-to-all: send to every peer (possibly empty), then receive from
	// every peer.
	for dst := 0; dst < p; dst++ {
		if dst == s.r.ID() {
			continue
		}
		if err := s.r.Send(dst, tagMigrateBase+s.r.ID(), outgoing[dst]); err != nil {
			return err
		}
	}
	for src := 0; src < p; src++ {
		if src == s.r.ID() {
			continue
		}
		data, err := s.r.Recv(src, tagMigrateBase+src)
		if err != nil {
			return err
		}
		for off := 0; off+particleRecBytes <= len(data); off += particleRecBytes {
			id, px, py, pz, vx, vy, vz := unpackParticle(data[off:])
			s.ids = append(s.ids, id)
			s.px = append(s.px, px)
			s.py = append(s.py, py)
			s.pz = append(s.pz, pz)
			s.vx = append(s.vx, vx)
			s.vy = append(s.vy, vy)
			s.vz = append(s.vz, vz)
		}
	}
	s.sortByID()
	s.resizeDerived()
	return nil
}

func (s *RankSim) truncate(n int) {
	s.ids = s.ids[:n]
	s.px = s.px[:n]
	s.py = s.py[:n]
	s.pz = s.pz[:n]
	s.vx = s.vx[:n]
	s.vy = s.vy[:n]
	s.vz = s.vz[:n]
}

// sortByID re-establishes the deterministic local order after migration.
func (s *RankSim) sortByID() {
	idx := make([]int, len(s.ids))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return s.ids[idx[a]] < s.ids[idx[b]] })
	permI64 := func(v []int64) []int64 {
		out := make([]int64, len(v))
		for i, j := range idx {
			out[i] = v[j]
		}
		return out
	}
	perm := func(v []float64) []float64 {
		out := make([]float64, len(v))
		for i, j := range idx {
			out[i] = v[j]
		}
		return out
	}
	s.ids = permI64(s.ids)
	s.px = perm(s.px)
	s.py = perm(s.py)
	s.pz = perm(s.pz)
	s.vx = perm(s.vx)
	s.vy = perm(s.vy)
	s.vz = perm(s.vz)
}

// computeForces runs the collective PM solve plus the halo-aware PP
// correction.
func (s *RankSim) computeForces() error {
	g := s.cfg.Grid
	h := s.cfg.Box / float64(g)

	// --- PM: local deposit, global reduce, redundant solve, local sample.
	s.mesh.Clear()
	depositCIC(s.mesh.Data(), g, h, s.px, s.py, s.pz)
	local := make([]float64, g*g*g)
	for i, c := range s.mesh.Data() {
		local[i] = real(c)
	}
	global, err := s.r.AllReduceSum(local)
	if err != nil {
		return err
	}
	data := s.mesh.Data()
	for i := range data {
		data[i] = complex(global[i], 0)
	}
	if err := solvePoisson(s.mesh, s.greens); err != nil {
		return err
	}
	gradientForces(data, s.fx, s.fy, s.fz, g, h)
	interpolateForces(data, s.fx, s.fy, s.fz, g, h,
		s.px, s.py, s.pz, s.ax, s.ay, s.az, s.phi)

	// --- PP: halo exchange then local pair loop.
	if s.cfg.Cutoff <= 0 {
		return nil
	}
	if err := s.exchangeHalo(); err != nil {
		return err
	}
	s.shortRange()
	return nil
}

// exchangeHalo ships boundary particles to the two slab neighbours,
// shifting coordinates across the periodic wrap so received z values are
// directly comparable with local ones.
func (s *RankSim) exchangeHalo() error {
	p := s.r.Size()
	h := s.cfg.Box / float64(s.cfg.Grid)
	rc := s.cfg.Cutoff * h

	var toLeft, toRight []byte
	for i := range s.ids {
		//lint:ignore floatcmp exact slab-boundary test is part of the deterministic ghost exchange
		if s.pz[i] < s.slabLo+rc {
			var rec [particleRecBytes]byte
			packParticle(rec[:], s.ids[i], s.px[i], s.py[i], s.pz[i], 0, 0, 0)
			toLeft = append(toLeft, rec[:]...)
		}
		//lint:ignore floatcmp exact slab-boundary test is part of the deterministic ghost exchange
		if s.pz[i] > s.slabHi-rc {
			var rec [particleRecBytes]byte
			packParticle(rec[:], s.ids[i], s.px[i], s.py[i], s.pz[i], 0, 0, 0)
			toRight = append(toRight, rec[:]...)
		}
	}
	left := (s.r.ID() + p - 1) % p
	right := (s.r.ID() + 1) % p

	// Exchange with left neighbour: we send our low boundary, receive
	// their high boundary. Tags disambiguate direction when p == 2 and
	// left == right.
	if err := s.r.Send(left, tagHaloLeft, toLeft); err != nil {
		return err
	}
	if err := s.r.Send(right, tagHaloRight, toRight); err != nil {
		return err
	}
	fromRight, err := s.r.Recv(right, tagHaloLeft) // right neighbour's low boundary
	if err != nil {
		return err
	}
	fromLeft, err := s.r.Recv(left, tagHaloRight) // left neighbour's high boundary
	if err != nil {
		return err
	}

	s.hpx = s.hpx[:0]
	s.hpy = s.hpy[:0]
	s.hpz = s.hpz[:0]
	appendHalo := func(data []byte, zshift float64) {
		for off := 0; off+particleRecBytes <= len(data); off += particleRecBytes {
			_, px, py, pz, _, _, _ := unpackParticle(data[off:])
			s.hpx = append(s.hpx, px)
			s.hpy = append(s.hpy, py)
			s.hpz = append(s.hpz, pz+zshift)
		}
	}
	// The left neighbour's high boundary sits just below our slab; if we
	// are rank 0 it arrives across the wrap and must be shifted down.
	shiftLeft := 0.0
	if s.r.ID() == 0 {
		shiftLeft = -s.cfg.Box
	}
	shiftRight := 0.0
	if s.r.ID() == p-1 {
		shiftRight = s.cfg.Box
	}
	appendHalo(fromLeft, shiftLeft)
	appendHalo(fromRight, shiftRight)
	return nil
}

// shortRange adds the PP correction for local particles using local +
// halo neighbours. x and y wrap via minimum image; z is pre-unwrapped by
// the halo shift.
func (s *RankSim) shortRange() {
	h := s.cfg.Box / float64(s.cfg.Grid)
	rc := s.cfg.Cutoff * h
	rc2 := rc * rc
	eps := s.cfg.Softening * h
	eps2 := eps * eps
	box := s.cfg.Box
	n := len(s.ids)

	// Combined neighbour set: locals then halos.
	cpx := append(append([]float64{}, s.px...), s.hpx...)
	cpy := append(append([]float64{}, s.py...), s.hpy...)
	cpz := append(append([]float64{}, s.pz...), s.hpz...)

	order := make([]int, n)
	for i := range order {
		order[i] = i
	}
	if s.rng != nil {
		s.rng.Shuffle(n, func(a, b int) { order[a], order[b] = order[b], order[a] })
	}

	// Brute-force over the combined set within the slab (slab populations
	// are modest per rank; a cell list keyed on slab-local cells would be
	// the next optimization).
	neighbors := make([]int, 0, 64)
	for _, i := range order {
		neighbors = neighbors[:0]
		for j := range cpx {
			if j == i {
				continue
			}
			dz := cpz[j] - s.pz[i]
			//lint:ignore floatcmp exact cutoff prefilter is part of the deterministic force law
			if dz > rc || dz < -rc {
				continue
			}
			neighbors = append(neighbors, j)
		}
		if s.rng != nil {
			s.rng.Shuffle(len(neighbors), func(a, b int) {
				neighbors[a], neighbors[b] = neighbors[b], neighbors[a]
			})
		}
		var sax, say, saz, sphi float64
		for _, j := range neighbors {
			dx := minImage(cpx[j]-s.px[i], box)
			dy := minImage(cpy[j]-s.py[i], box)
			dz := cpz[j] - s.pz[i]
			r2 := dx*dx + dy*dy + dz*dz
			f, pot, ok := pairForce(r2, rc, rc2, eps2)
			if !ok {
				continue
			}
			sax += f * dx
			say += f * dy
			saz += f * dz
			sphi += pot
			if s.rng != nil {
				sax = float64(float32(sax))
				say = float64(float32(say))
				saz = float64(float32(saz))
				sphi = float64(float32(sphi))
			}
		}
		s.ax[i] += sax
		s.ay[i] += say
		s.az[i] += saz
		s.phi[i] += sphi
	}
}

// ShardRange returns the global particle-ID range [lo, hi) that this rank
// checkpoints (fixed across iterations and runs).
func (s *RankSim) ShardRange() (lo, hi int64) {
	n := int64(s.cfg.Particles)
	p := int64(s.r.Size())
	per := n / p
	lo = int64(s.r.ID()) * per
	hi = lo + per
	if s.r.ID() == s.r.Size()-1 {
		hi = n
	}
	return lo, hi
}

// SnapshotShard gathers the global particle state and returns this rank's
// fixed ID-range shard as checkpoint field buffers (FieldNames order).
// The gather keeps shards schema-stable across iterations and runs even
// though slab populations fluctuate.
func (s *RankSim) SnapshotShard() ([][]byte, error) {
	// Pack local particles (id + pos + vel + phi).
	const rec = 8 + 7*8
	local := make([]byte, 0, rec*len(s.ids))
	var buf [rec]byte
	for i := range s.ids {
		packParticle(buf[:particleRecBytes], s.ids[i], s.px[i], s.py[i], s.pz[i], s.vx[i], s.vy[i], s.vz[i])
		binary.LittleEndian.PutUint64(buf[particleRecBytes:], math.Float64bits(s.phi[i]))
		local = append(local, buf[:]...)
	}
	parts, err := s.r.AllGather(local)
	if err != nil {
		return nil, err
	}
	lo, hi := s.ShardRange()
	count := int(hi - lo)
	fields := make([][]byte, len(FieldNames))
	for f := range fields {
		fields[f] = make([]byte, 4*count)
	}
	seen := 0
	for _, part := range parts {
		for off := 0; off+rec <= len(part); off += rec {
			id, px, py, pz, vx, vy, vz := unpackParticle(part[off:])
			if id < lo || id >= hi {
				continue
			}
			phi := math.Float64frombits(binary.LittleEndian.Uint64(part[off+particleRecBytes:]))
			i := int(id - lo)
			vals := [7]float64{px, py, pz, vx, vy, vz, phi}
			for f, v := range vals {
				binary.LittleEndian.PutUint32(fields[f][i*4:], math.Float32bits(float32(v)))
			}
			seen++
		}
	}
	if seen != count {
		return nil, fmt.Errorf("hacc: shard gathered %d of %d particles", seen, count)
	}
	return fields, nil
}

// Capture snapshots this rank's shard and hands it to a checkpointer as
// iteration/rank-stamped checkpoint.
func (s *RankSim) Capture(c *ckpt.Checkpointer, runID string) error {
	data, err := s.SnapshotShard()
	if err != nil {
		return err
	}
	lo, hi := s.ShardRange()
	meta := ckpt.Meta{
		RunID:     runID,
		Iteration: s.step,
		Rank:      s.r.ID(),
		Fields:    Schema(int(hi - lo)),
	}
	return c.Capture(meta, data)
}
