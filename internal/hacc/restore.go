package hacc

import (
	"encoding/binary"
	"fmt"
	"math"

	"repro/internal/ckpt"
)

// Restore reconstructs a simulation from a captured checkpoint — the
// suspend-resume use of checkpointing (paper §1). The checkpoint must
// carry the full Table 1 schema; cfg must match the run that captured it
// (particle count is taken from the checkpoint). Velocities and positions
// resume exactly as stored (float32 precision); forces are recomputed, so
// the leapfrog stream continues from the captured iteration.
func Restore(cfg Config, r *ckpt.Reader) (*Sim, error) {
	meta := r.Meta()
	if len(meta.Fields) != len(FieldNames) {
		return nil, fmt.Errorf("hacc: checkpoint has %d fields, want %d", len(meta.Fields), len(FieldNames))
	}
	for i, want := range FieldNames {
		if meta.Fields[i].Name != want {
			return nil, fmt.Errorf("hacc: field %d is %q, want %q", i, meta.Fields[i].Name, want)
		}
	}
	particles := int(meta.Fields[0].Count)
	cfg.Particles = particles
	if err := cfg.Validate(); err != nil {
		return nil, err
	}

	// Build the simulation shell (initial conditions are immediately
	// overwritten by the checkpoint state).
	s, err := New(cfg)
	if err != nil {
		return nil, err
	}
	dst := [][]float64{s.px, s.py, s.pz, s.vx, s.vy, s.vz, s.phi}
	for fi := range FieldNames {
		raw, _, err := r.ReadField(fi)
		if err != nil {
			return nil, fmt.Errorf("hacc: restore field %q: %w", FieldNames[fi], err)
		}
		for i := 0; i < particles; i++ {
			v := float64(math.Float32frombits(binary.LittleEndian.Uint32(raw[i*4:])))
			if fi < 3 {
				v = wrap(v, cfg.Box) // float32 rounding can graze the box edge
			}
			dst[fi][i] = v
		}
	}
	s.step = meta.Iteration
	// Forces correspond to the restored positions, not the ICs.
	if err := s.computeForces(); err != nil {
		return nil, err
	}
	return s, nil
}
