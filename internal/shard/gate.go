package shard

import (
	"sync"
	"time"

	"context"
)

// vgate serializes unit execution in virtual-time order: the worker with
// the lowest virtual clock (ties to the lowest id) holds the baton, takes
// its next unit, executes it, and releases the baton with the unit's
// virtual cost added to its clock. This is the discrete-event scheduler
// that makes the whole sharded execution deterministic — which worker
// runs which unit, every steal, every chaos death, the cache state each
// read observes, and through them the makespan — regardless of how the
// OS schedules the goroutines. Wall-clock parallelism is irrelevant here:
// all reported times are model time, and the model says the next unit
// starts on whichever worker is least loaded so far.
type vgate struct {
	mu     sync.Mutex
	cond   *sync.Cond
	clock  []time.Duration
	active []bool
	holder int
}

func newVgate(n int) *vgate {
	g := &vgate{
		clock:  make([]time.Duration, n),
		active: make([]bool, n),
		holder: -1,
	}
	for i := range g.active {
		g.active[i] = true
	}
	g.cond = sync.NewCond(&g.mu)
	return g
}

// minLocked returns the active worker with the lowest (clock, id).
func (g *vgate) minLocked() int {
	best := -1
	for w := range g.clock {
		if !g.active[w] {
			continue
		}
		if best == -1 || g.clock[w] < g.clock[best] {
			best = w
		}
	}
	return best
}

// enter blocks until worker w holds the baton (or the context dies). The
// caller must follow with leave or exit on every path.
func (g *vgate) enter(ctx context.Context, w int) error {
	g.mu.Lock()
	defer g.mu.Unlock()
	for {
		if err := ctx.Err(); err != nil {
			return err
		}
		if g.holder == -1 && g.minLocked() == w {
			g.holder = w
			return nil
		}
		g.cond.Wait()
	}
}

// leave releases the baton after one unit, charging its virtual cost.
func (g *vgate) leave(w int, cost time.Duration) {
	g.mu.Lock()
	g.clock[w] += cost
	if g.holder == w {
		g.holder = -1
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// exit permanently removes worker w from the schedule (normal drain,
// error, or chaos death), releasing the baton if held. Idempotent.
func (g *vgate) exit(w int) {
	g.mu.Lock()
	g.active[w] = false
	if g.holder == w {
		g.holder = -1
	}
	g.mu.Unlock()
	g.cond.Broadcast()
}

// wake nudges every waiter to re-check its predicate (context death).
func (g *vgate) wake() { g.cond.Broadcast() }
