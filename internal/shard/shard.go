package shard

import (
	"fmt"
	"sort"
	"sync"
	"time"

	"context"

	"repro/internal/compare"
	"repro/internal/merkle"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

// Assignment selects how the coordinator maps work units to workers
// before execution starts (stealing then rebalances at runtime).
type Assignment int

// Assignment policies.
const (
	// AssignBlock is the owner-computes domain decomposition: worker w
	// owns a contiguous block of the global chunk key space. It is the
	// classic static partition — and the one skewed diff density
	// punishes, since all divergent subtrees may fall into one block.
	AssignBlock Assignment = iota
	// AssignPlacement is placement-aware: each unit goes to the worker
	// owning its home OST (Target % Workers), so every target is read
	// by exactly one worker and per-target contention stays at 1. On an
	// unstriped store it degenerates to AssignBlock.
	AssignPlacement
	// AssignRandom scatters units uniformly by a seeded hash: balanced
	// counts, but every worker touches every OST, so per-target
	// contention approaches the worker count.
	AssignRandom
)

// String returns the policy's report name.
func (a Assignment) String() string {
	switch a {
	case AssignBlock:
		return "block"
	case AssignPlacement:
		return "placement"
	case AssignRandom:
		return "random"
	default:
		return fmt.Sprintf("Assignment(%d)", int(a))
	}
}

// Chaos schedules a deterministic worker failure mid-comparison: worker
// Worker dies after completing AfterUnits units. The dying worker
// returns its in-flight unit to its deque (stealable, never dropped)
// and exits cleanly; peers — or the coordinator's drain fallback —
// finish its share.
type Chaos struct {
	Enabled    bool
	Worker     int
	AfterUnits int
}

// Config parameterizes the sharded comparison engine.
type Config struct {
	// Workers is the simulated worker count M (default 4).
	Workers int
	// Budget bounds the stage-2 chunk bytes (both sides summed) a worker
	// may hold in flight at once — the out-of-core invariant. Default
	// 16 MiB; must be at least twice the options' chunk size.
	Budget int64
	// SubtreeChunks is the work-unit grain: candidate chunks of one
	// (pair, field) are grouped into subtrees of this many leaves
	// (default 16).
	SubtreeChunks int
	// Assignment selects the initial unit→worker mapping.
	Assignment Assignment
	// Stealing lets idle workers steal subtree batches from the tail of
	// the most-loaded peer's deque.
	Stealing bool
	// Seed drives AssignRandom (and nothing else).
	Seed uint64
	// Chaos optionally kills one worker mid-comparison.
	Chaos Chaos
}

// normalized validates the configuration against the (already
// normalized) comparison options and fills defaults.
func (c Config) normalized(opts compare.Options) (Config, error) {
	if c.Workers <= 0 {
		c.Workers = 4
	}
	if c.SubtreeChunks <= 0 {
		c.SubtreeChunks = 16
	}
	if c.Budget <= 0 {
		c.Budget = 16 << 20
	}
	if min := 2 * int64(opts.ChunkSize); c.Budget < min {
		return c, fmt.Errorf("shard: budget %d below one chunk pair (%d bytes)", c.Budget, min)
	}
	if c.Chaos.Enabled && (c.Chaos.Worker < 0 || c.Chaos.Worker >= c.Workers) {
		return c, fmt.Errorf("shard: chaos worker %d out of range [0,%d)", c.Chaos.Worker, c.Workers)
	}
	return c, nil
}

// WorkerStats is one worker's share of the execution.
type WorkerStats struct {
	Units        int           `json:"units"`
	Steals       int64         `json:"steals"`
	StolenUnits  int64         `json:"stolen_units"`
	IOVirtual    time.Duration `json:"io_virtual_ns"`
	CompVirtual  time.Duration `json:"comp_virtual_ns"`
	BytesRead    int64         `json:"bytes_read"`
	PeakInFlight int64         `json:"peak_in_flight_bytes"`
	Died         bool          `json:"died,omitempty"`
}

// Virtual is the worker's total virtual busy time.
func (w WorkerStats) Virtual() time.Duration { return w.IOVirtual + w.CompVirtual }

// Stats reports the scale-out execution itself — scheduling, stealing,
// contention, budget — alongside the comparison Result/GroupReport,
// which stays bit-identical to the single-node path.
type Stats struct {
	Workers    int    `json:"workers"`
	Units      int    `json:"units"`
	Targets    int    `json:"targets"`
	Assignment string `json:"assignment"`
	Stealing   bool   `json:"stealing"`
	// MakespanVirtual is the slowest worker's virtual busy time (plus
	// the coordinator's drain fallback, when it ran) — the scale-out
	// figure of merit.
	MakespanVirtual time.Duration `json:"makespan_virtual_ns"`
	// ReadVirtual sums every worker's virtual read time — the quantity
	// placement-aware assignment minimizes on a striped store.
	ReadVirtual time.Duration `json:"read_virtual_ns"`
	// TotalVirtual sums every worker's busy time (io + compute).
	TotalVirtual time.Duration `json:"total_virtual_ns"`
	Steals       int64         `json:"steals"`
	StolenUnits  int64         `json:"stolen_units"`
	// WorkerFailures counts chaos-killed workers; CoordinatorUnits
	// counts orphaned units the coordinator executed itself after all
	// workers exited.
	WorkerFailures   int           `json:"worker_failures"`
	CoordinatorUnits int           `json:"coordinator_units"`
	BudgetBytes      int64         `json:"budget_bytes"`
	PeakInFlight     int64         `json:"peak_in_flight_bytes"`
	PerWorker        []WorkerStats `json:"per_worker"`
}

// splitmix64 is the same deterministic mixer the retry jitter uses: no
// global RNG, no wall clock, reproducible across runs.
func splitmix64(x uint64) uint64 {
	x += 0x9e3779b97f4a7c15
	x = (x ^ (x >> 30)) * 0xbf58476d1ce4e5b9
	x = (x ^ (x >> 27)) * 0x94d049bb133111eb
	return x ^ (x >> 31)
}

// pairFiles is one compared pair's open file handles.
type pairFiles struct {
	fA, fB *pfs.File
}

// foldState accumulates one (pair, field)'s verdicts.
type foldState struct {
	diffs      []int64
	changed    int64
	unverified int64
}

// run is the shared coordinator/worker executor behind Compare and
// GroupCompare: the planners fill units and files, execute fans them out
// over M worker goroutines connected by an mpi communicator, and the
// fold accessors hand the merged verdicts back to the report steps.
type run struct {
	store *pfs.Store
	cfg   Config
	opts  compare.Options

	files []pairFiles

	units  []*UnitMsg
	frames [][]byte
	// unitKeys[seq] is the unit's ordinal in the global chunk key space
	// (chunks of prior pairs/fields plus its first chunk index);
	// totalChunks is that space's size. AssignBlock decomposes this key
	// space — not the candidate list — so skewed divergence really does
	// land on few workers, as it would under owner-computes.
	unitKeys    []int64
	totalChunks int64
	dq          *Deques[int64]
	gate        *vgate

	workers []workerState

	// folded state, written by the coordinator's receiver goroutines
	// (one per worker, disjoint slices) and read after the join.
	mu        sync.Mutex
	folds     map[[2]int64]*foldState // (pair, field) -> fold
	readCost  pfs.Cost
	bytesRead int64
	retries   int64
	rereads   int64

	stats Stats
}

func newRun(store *pfs.Store, cfg Config, opts compare.Options) *run {
	return &run{
		store: store,
		cfg:   cfg,
		opts:  opts,
		folds: make(map[[2]int64]*foldState),
	}
}

// addUnits partitions one (pair, field)'s candidate chunks into subtree
// work units. chunks must be ascending (merkle.Diff order). baseA/baseB
// are the field's absolute file offsets in the two containers. The
// caller then grows r.totalChunks by the field's full chunk count, so
// unit key ordinals stay aligned with the global key space.
func (r *run) addUnits(pair, field int, fm compare.FieldMeta, treeB *merkle.Tree, chunks []int, baseA, baseB int64) {
	keyBase := r.totalChunks
	if len(chunks) == 0 {
		return
	}
	striping := r.store.Striping()
	eltSize := int64(fm.DType.Size())
	chunkElems := int64(fm.Tree.ChunkSize()) / eltSize
	grain := r.cfg.SubtreeChunks
	i := 0
	for i < len(chunks) {
		// One unit per grain-level subtree: all candidates whose chunk
		// index falls in [sub*grain, (sub+1)*grain).
		sub := chunks[i] / grain
		j := i
		for j < len(chunks) && chunks[j]/grain == sub {
			j++
		}
		u := &UnitMsg{
			Seq:        int64(len(r.units)),
			Pair:       int64(pair),
			Field:      int64(field),
			Subtree:    int64(sub),
			ChunkElems: chunkElems,
			DType:      uint8(fm.DType),
			Epsilon:    r.opts.Epsilon,
			Chunks:     make([]ChunkRefMsg, 0, j-i),
		}
		for _, ci := range chunks[i:j] {
			off, n := fm.Tree.ChunkRange(ci)
			u.Chunks = append(u.Chunks, ChunkRefMsg{
				Index:   int64(ci),
				OffA:    baseA + off,
				OffB:    baseB + off,
				Len:     int64(n),
				DigestA: fm.Tree.Leaf(ci),
				DigestB: treeB.Leaf(ci),
			})
		}
		u.Target = int64(striping.TargetOf(u.Chunks[0].OffA))
		r.units = append(r.units, u)
		r.unitKeys = append(r.unitKeys, keyBase+int64(chunks[i]))
		i = j
	}
}

// assign encodes every unit, maps it to its initial worker under the
// configured policy, and freezes the per-target contention table: each
// OST's sharers count is the number of distinct workers whose assigned
// units live there. The table is frozen at assignment time — stealing
// moves work but keeps the assignment-time pricing, a deliberate (and
// documented) simplification that keeps unit read costs deterministic.
func (r *run) assign() {
	m := r.cfg.Workers
	r.frames = make([][]byte, len(r.units))
	r.dq = NewDeques[int64](m, func(seq int64) int64 { return r.units[seq].Bytes() })
	striping := r.store.Striping()
	targets := striping.Targets
	if targets < 1 {
		targets = 1
	}
	touched := make([]map[int]bool, targets)
	for seq, u := range r.units {
		r.frames[seq] = EncodeUnit(u)
		var w int
		switch r.cfg.Assignment {
		case AssignPlacement:
			if striping.Enabled() {
				w = int(u.Target) % m
			} else {
				w = int(r.unitKeys[seq] * int64(m) / max64(r.totalChunks, 1))
			}
		case AssignRandom:
			w = int(splitmix64(r.cfg.Seed^uint64(seq)*0x9e3779b97f4a7c15) % uint64(m))
		default: // AssignBlock
			w = int(r.unitKeys[seq] * int64(m) / max64(r.totalChunks, 1))
		}
		if w >= m {
			w = m - 1
		}
		r.dq.Push(w, int64(seq))
		t := int(u.Target)
		if touched[t] == nil {
			touched[t] = make(map[int]bool)
		}
		touched[t][w] = true
	}
	table := make([]int, targets)
	for t := range table {
		if n := len(touched[t]); n > 0 {
			table[t] = n
		} else {
			table[t] = 1
		}
	}
	r.store.SetTargetSharers(table)
	r.stats.Workers = m
	r.stats.Units = len(r.units)
	r.stats.Targets = targets
	r.stats.Assignment = r.cfg.Assignment.String()
	r.stats.Stealing = r.cfg.Stealing
	r.stats.BudgetBytes = r.cfg.Budget
}

func max64(a, b int64) int64 {
	if a > b {
		return a
	}
	return b
}

// shardTag is the single mpi tag of the worker→coordinator verdict
// stream; using one tag preserves per-link FIFO order, so a worker's
// done frame is always the last thing its receiver sees.
const shardTag = 1

// execute fans the assigned units out over the workers, folds the
// verdict stream, and fills Stats. The per-target contention table
// installed by assign is cleared on every exit path.
func (r *run) execute(ctx context.Context) error {
	defer r.store.SetTargetSharers(nil)
	m := r.cfg.Workers
	r.workers = make([]workerState, m)
	for w := range r.workers {
		r.workers[w].init(r, w)
	}
	if len(r.units) == 0 {
		r.stats.PerWorker = make([]WorkerStats, m)
		return nil
	}
	comm, err := mpi.NewComm(m + 1)
	if err != nil {
		return err
	}
	coord, err := comm.Rank(0)
	if err != nil {
		return err
	}
	r.gate = newVgate(m)
	// Wake gate waiters when the context dies so cancellation reaches
	// workers blocked on the baton, not just workers mid-read.
	wake := make(chan struct{})
	defer close(wake)
	go func() {
		select {
		case <-ctx.Done():
			r.gate.wake()
		case <-wake:
		}
	}()

	var wg sync.WaitGroup
	workerErrs := make([]error, m)
	recvErrs := make([]error, m)
	dones := make([]*DoneMsg, m)
	verdicts := make([][]*VerdictMsg, m)
	for w := 0; w < m; w++ {
		rank, err := comm.Rank(w + 1)
		if err != nil {
			return err
		}
		wg.Add(2)
		go func(w int, rank *mpi.Rank) {
			defer wg.Done()
			workerErrs[w] = r.workerLoop(ctx, w, rank)
		}(w, rank)
		// One receiver per worker: concurrent Recv on the coordinator
		// rank is safe across distinct sources (disjoint links), and the
		// single tag makes the done frame a FIFO-ordered terminator.
		go func(w int) {
			defer wg.Done()
			for {
				frame, err := coord.Recv(w+1, shardTag)
				if err != nil {
					recvErrs[w] = err
					return
				}
				kind, err := FrameKind(frame)
				if err != nil {
					recvErrs[w] = err
					return
				}
				if kind == kindDone {
					dones[w], recvErrs[w] = DecodeDone(frame)
					return
				}
				v, err := DecodeVerdict(frame)
				if err != nil {
					recvErrs[w] = err
					return
				}
				verdicts[w] = append(verdicts[w], v)
			}
		}(w)
	}
	wg.Wait()

	for w := 0; w < m; w++ {
		if recvErrs[w] != nil {
			return fmt.Errorf("shard: coordinator recv from worker %d: %w", w, recvErrs[w])
		}
	}
	for w := 0; w < m; w++ {
		if workerErrs[w] != nil {
			return fmt.Errorf("shard: worker %d: %w", w, workerErrs[w])
		}
	}
	if err := ctx.Err(); err != nil {
		return err
	}

	// A dying worker returns its in-flight unit to its deque. Peers
	// usually re-steal it, but if every other worker already saw a
	// globally-empty scheduler and exited, the coordinator executes the
	// leftovers itself — degraded throughput, never a dropped verdict.
	var coordVirtual time.Duration
	var coordVerdicts []*VerdictMsg
	if leftovers := r.dq.Drain(); len(leftovers) > 0 {
		cs := workerState{}
		cs.init(r, m)
		for _, seq := range leftovers {
			v, err := r.executeUnit(ctx, &cs, r.units[seq])
			if err != nil {
				return fmt.Errorf("shard: coordinator drain unit %d: %w", seq, err)
			}
			coordVerdicts = append(coordVerdicts, v)
			r.stats.CoordinatorUnits++
		}
		coordVirtual = cs.ioVirtual + cs.compVirtual
		r.stats.ReadVirtual += cs.ioVirtual
	}

	// Hierarchical fold: verdicts arrive per worker in FIFO order, but
	// which worker ran a unit is schedule-dependent; sorting by unit
	// sequence makes the fold order — and through it every accumulated
	// slice — deterministic before the report steps sort per-field
	// indices ascending.
	all := coordVerdicts
	for w := range verdicts {
		all = append(all, verdicts[w]...)
	}
	sort.Slice(all, func(i, j int) bool { return all[i].Seq < all[j].Seq })
	for _, v := range all {
		r.foldVerdict(v)
	}

	r.stats.PerWorker = make([]WorkerStats, m)
	var makespan time.Duration
	for w := 0; w < m; w++ {
		ws := &r.workers[w]
		stealOps, stealItems := r.dq.StealStatsOf(w)
		pw := WorkerStats{
			Units:        ws.units,
			Steals:       stealOps,
			StolenUnits:  stealItems,
			IOVirtual:    ws.ioVirtual,
			CompVirtual:  ws.compVirtual,
			BytesRead:    ws.bytesRead,
			PeakInFlight: ws.gauge.Peak(),
			Died:         ws.died,
		}
		if dones[w] != nil && dones[w].Died != 0 {
			pw.Died = true
		}
		if pw.Died {
			r.stats.WorkerFailures++
		}
		r.stats.PerWorker[w] = pw
		r.stats.ReadVirtual += pw.IOVirtual
		r.stats.TotalVirtual += pw.Virtual()
		if pw.Virtual() > makespan {
			makespan = pw.Virtual()
		}
		if pw.PeakInFlight > r.stats.PeakInFlight {
			r.stats.PeakInFlight = pw.PeakInFlight
		}
	}
	r.stats.MakespanVirtual = makespan + coordVirtual
	r.stats.TotalVirtual += coordVirtual
	r.stats.Steals, r.stats.StolenUnits = r.dq.StealStats()
	return nil
}

// foldVerdict merges one unit's verdict into the per-(pair, field)
// accumulator and the run-level accounting.
func (r *run) foldVerdict(v *VerdictMsg) {
	key := [2]int64{v.Pair, v.Field}
	f := r.folds[key]
	if f == nil {
		f = &foldState{}
		r.folds[key] = f
	}
	f.diffs = append(f.diffs, v.Diffs...)
	f.changed += v.Changed
	f.unverified += v.Unverified
	r.readCost.Add(pfs.Cost{Ops: int(v.Ops), CachedOps: int(v.CachedOps), Bytes: v.Bytes, CachedBytes: v.CachedBytes})
	r.bytesRead += v.BytesRead
	r.retries += v.Retries
	r.rereads += v.Rereads
}

// fold returns the accumulated state for one (pair, field), or nil.
func (r *run) fold(pair, field int) *foldState {
	return r.folds[[2]int64{int64(pair), int64(field)}]
}

// sortedDiffs returns one (pair, field)'s merged divergence indices,
// ascending — the hierarchical reduction's leaf-to-root contract.
func (f *foldState) sortedDiffs() []int64 {
	sort.Slice(f.diffs, func(i, j int) bool { return f.diffs[i] < f.diffs[j] })
	return f.diffs
}
