package shard

import "sync"

// Deques is a set of per-worker double-ended work queues with batch tail
// stealing — the one scheduler shared by the subtree sharder and the
// pair-level cluster harness. The owner of a deque pops work from its
// head; an idle worker steals a batch from the TAIL of the most-loaded
// peer's deque, which preserves the victim's locality (the head items it
// is about to run stay put) and moves the coldest work.
//
// The implementation is a single mutex over all deques. Work units here
// are coarse (a subtree's worth of stage-2 I/O, or a whole checkpoint
// pair), so scheduler contention is noise next to unit execution; the
// simplicity buys an obviously-correct re-steal path for worker-failure
// recovery, which lock-free deques make subtle.
type Deques[T any] struct {
	mu     sync.Mutex
	qs     [][]T
	weight []int64
	weigh  func(T) int64

	steals      int64 // successful steal operations
	stolenItems int64 // items moved by those steals
	stealsBy    []int64
	stolenBy    []int64
}

// NewDeques creates n empty deques. weigh prices one item for victim
// selection; nil weighs every item 1.
func NewDeques[T any](n int, weigh func(T) int64) *Deques[T] {
	if n < 1 {
		n = 1
	}
	if weigh == nil {
		weigh = func(T) int64 { return 1 }
	}
	return &Deques[T]{
		qs:       make([][]T, n),
		weight:   make([]int64, n),
		weigh:    weigh,
		stealsBy: make([]int64, n),
		stolenBy: make([]int64, n),
	}
}

// N returns the number of deques.
func (d *Deques[T]) N() int { return len(d.qs) }

// Push appends items to the tail of owner's deque. A dying worker uses
// this to return its in-flight unit, which makes the unit stealable
// again — never silently dropped.
func (d *Deques[T]) Push(owner int, items ...T) {
	d.mu.Lock()
	defer d.mu.Unlock()
	d.qs[owner] = append(d.qs[owner], items...)
	for _, it := range items {
		d.weight[owner] += d.weigh(it)
	}
}

// Pop removes and returns the head of owner's own deque.
func (d *Deques[T]) Pop(owner int) (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.popLocked(owner)
}

func (d *Deques[T]) popLocked(owner int) (T, bool) {
	var zero T
	q := d.qs[owner]
	if len(q) == 0 {
		return zero, false
	}
	it := q[0]
	q[0] = zero // release the reference for GC
	d.qs[owner] = q[1:]
	d.weight[owner] -= d.weigh(it)
	return it, true
}

// Steal picks the heaviest non-empty peer deque and moves up to half of
// it (by item count, at least one) from its tail onto owner's deque,
// then pops owner's head. It returns false only when every other deque
// is empty — the global out-of-work condition for a worker whose own
// deque is drained.
func (d *Deques[T]) Steal(owner int) (T, bool) {
	d.mu.Lock()
	defer d.mu.Unlock()
	victim, best := -1, int64(0)
	for w := range d.qs {
		if w == owner || len(d.qs[w]) == 0 {
			continue
		}
		if victim == -1 || d.weight[w] > best {
			victim, best = w, d.weight[w]
		}
	}
	if victim == -1 {
		// Nothing to steal; the owner's own deque may still have been
		// refilled (a dying worker returning its unit) since the caller's
		// last Pop.
		return d.popLocked(owner)
	}
	q := d.qs[victim]
	k := (len(q) + 1) / 2
	batch := q[len(q)-k:]
	var moved int64
	for _, it := range batch {
		moved += d.weigh(it)
	}
	d.qs[owner] = append(d.qs[owner], batch...)
	for i := range batch {
		var zero T
		q[len(q)-k+i] = zero
	}
	d.qs[victim] = q[:len(q)-k]
	d.weight[victim] -= moved
	d.weight[owner] += moved
	d.steals++
	d.stolenItems += int64(k)
	d.stealsBy[owner]++
	d.stolenBy[owner] += int64(k)
	return d.popLocked(owner)
}

// Drain removes and returns every remaining item across all deques, in
// deque order — the coordinator's fallback for work returned by a dying
// worker after its peers already exited.
func (d *Deques[T]) Drain() []T {
	d.mu.Lock()
	defer d.mu.Unlock()
	var out []T
	for w := range d.qs {
		out = append(out, d.qs[w]...)
		d.qs[w] = nil
		d.weight[w] = 0
	}
	return out
}

// Len returns the current length of one deque.
func (d *Deques[T]) Len(owner int) int {
	d.mu.Lock()
	defer d.mu.Unlock()
	return len(d.qs[owner])
}

// StealStats returns the cumulative (steal operations, items moved).
func (d *Deques[T]) StealStats() (ops, items int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.steals, d.stolenItems
}

// StealStatsOf returns one thief's (steal operations, items moved).
func (d *Deques[T]) StealStatsOf(owner int) (ops, items int64) {
	d.mu.Lock()
	defer d.mu.Unlock()
	return d.stealsBy[owner], d.stolenBy[owner]
}
