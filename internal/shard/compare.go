package shard

import (
	"fmt"
	"time"

	"context"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/pfs"
	"repro/internal/simclock"
)

// deserializeBytesPerSec prices metadata parsing (a memory-bandwidth-bound
// scan) on the virtual clock — the same constant the single-node planners
// use, so stage-1 pricing stays comparable across paths.
const deserializeBytesPerSec = 5e9

// pairPlan carries one sharded pair comparison through its plan steps.
// The stage-1 steps mirror the single-node Merkle planner exactly — same
// metadata gates, same pruned BFS, same pricing — so the sharded path
// diverges only at partition/execute, and the report it folds back is
// bit-identical to CompareMerkle's.
type pairPlan struct {
	r            *run
	nameA, nameB string
	res          *compare.Result

	ra, rb   *ckpt.Reader
	ma, mb   *compare.Metadata
	selected func(string) bool

	candidates []fieldCandidates
}

// fieldCandidates is one field's stage-1 output: the candidate chunks the
// tree diff could not prune.
type fieldCandidates struct {
	field  int
	chunks []int
}

// Compare runs the two-stage Merkle comparison of one checkpoint pair
// sharded across cfg.Workers simulated workers: stage 1 (metadata load +
// pruned tree diff) runs on the coordinator only, divergent subtrees
// become self-describing work units, and stage 2 executes on the workers
// under the budget/stealing regime. The Result is bit-identical — diffs,
// verdicts, chunk accounting — to CompareMerkle over the same inputs;
// Stats reports the scale-out execution itself.
func Compare(ctx context.Context, store *pfs.Store, nameA, nameB string, cfg Config, opts compare.Options) (*compare.Result, *Stats, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, nil, err
	}
	cfg, err = cfg.normalized(opts)
	if err != nil {
		return nil, nil, err
	}
	st := &pairPlan{
		r:     newRun(store, cfg, opts),
		nameA: nameA,
		nameB: nameB,
		res:   &compare.Result{Method: "merkle-shard"},
	}
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-checkpoints", st.stepOpen)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMetadata, open)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepTreeDiff, load)
	part := p.Add(engine.StepPartition, "partition", st.stepPartition, diff)
	exec := p.Add(engine.StepShardExecute, "shard-execute", st.stepExecute, part)
	p.Add(engine.StepReport, "report", st.stepReport, exec)
	rep, err := engine.Execute(ctx, &p)
	st.res.Steps = rep.Steps
	if err != nil {
		return nil, nil, err
	}
	return st.res, &st.r.stats, nil
}

// stepOpen opens both checkpoints on the cleanup chain and validates the
// schemas match.
func (st *pairPlan) stepOpen(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	ra, _, err := ckpt.OpenReader(st.r.store, st.nameA)
	if err != nil {
		return err
	}
	x.CloseOnExit(ra)
	rb, _, err := ckpt.OpenReader(st.r.store, st.nameB)
	if err != nil {
		return err
	}
	x.CloseOnExit(rb)
	if !ckpt.SameSchema(ra.Meta(), rb.Meta()) {
		return fmt.Errorf("shard: %s and %s have different schemas", st.nameA, st.nameB)
	}
	st.ra, st.rb = ra, rb
	st.res.CheckpointBytes = ra.Meta().TotalBytes()
	st.res.Breakdown.AddVirtual(metrics.PhaseSetup, st.r.opts.SetupVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.r.opts.SetupVirtual)
	return nil
}

// stepLoadMetadata loads both runs' Merkle metadata on the coordinator,
// prices deserialization, and validates ε and field parity — stage 1
// never leaves the coordinator.
func (st *pairPlan) stepLoadMetadata(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	model := st.r.store.Model()
	sharers := st.r.store.Sharers()
	ma, costA, dwallA, err := compare.LoadMetadata(ctx, st.r.store, st.nameA)
	if err != nil {
		return err
	}
	mb, costB, dwallB, err := compare.LoadMetadata(ctx, st.r.store, st.nameB)
	if err != nil {
		return err
	}
	st.ma, st.mb = ma, mb
	st.res.RootA, st.res.RootB = ma.CombinedRoot(), mb.CombinedRoot()
	var metaCost pfs.Cost
	metaCost.Add(costA)
	metaCost.Add(costB)
	st.res.MetadataBytes = ma.Bytes()
	st.res.BytesRead += metaCost.TotalBytes()
	readV := model.SerialReadTime(metaCost, sharers)
	deserV := simclock.BandwidthTime(metaCost.TotalBytes(), deserializeBytesPerSec)
	st.res.Breakdown.AddVirtual(metrics.PhaseRead, readV)
	st.res.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())
	st.res.Breakdown.AddVirtual(metrics.PhaseDeserialize, deserV)
	st.res.Breakdown.AddWall(metrics.PhaseDeserialize, dwallA+dwallB)
	x.AddVirtual(readV + deserV)

	if err := compare.CheckMetaPair(ma, mb, st.r.opts.Epsilon); err != nil {
		return err
	}
	fieldNames := make([]string, len(ma.Fields))
	for i := range ma.Fields {
		fieldNames[i] = ma.Fields[i].Name
	}
	selected, err := st.r.opts.FieldFilter(fieldNames)
	if err != nil {
		return err
	}
	st.selected = selected
	return nil
}

// stepTreeDiff runs stage 1: the pruned BFS tree diff per selected field,
// identical in traversal and pricing to the single-node path.
func (st *pairPlan) stepTreeDiff(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	exec := device.Cancelable{Done: ctx.Done(), Inner: st.r.opts.Exec}
	var treeVirtual time.Duration
	for fi := range st.ma.Fields {
		fm := st.ma.Fields[fi]
		if !st.selected(fm.Name) {
			continue
		}
		ta, tb := fm.Tree, st.mb.Fields[fi].Tree
		start := st.r.opts.StartLevel
		if start < 0 {
			start = ta.DefaultStartLevel(exec.Workers())
		}
		chunks, nodes, err := merkle.Diff(ta, tb, start, exec)
		if err != nil {
			return fmt.Errorf("shard: field %q: %w", fm.Name, err)
		}
		if cerr := ctx.Err(); cerr != nil {
			return cerr
		}
		st.res.TotalChunks += ta.NumChunks()
		st.res.CandidateChunks += len(chunks)
		if len(chunks) > 0 {
			st.candidates = append(st.candidates, fieldCandidates{field: fi, chunks: chunks})
		}
		levels := ta.Depth() - start + 1
		treeVirtual += time.Duration(levels)*st.r.opts.Device.KernelLaunch +
			simclock.BandwidthTime(nodes*16, float64(st.r.opts.Device.NodeHashesPerSec)*16)
	}
	st.res.Breakdown.AddVirtual(metrics.PhaseCompareTree, treeVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseCompareTree, sw.Lap())
	x.AddVirtual(treeVirtual)
	return nil
}

// stepPartition cuts the candidate chunks into subtree work units, keyed
// into the global chunk key space (every selected field contributes its
// full chunk count, divergent or not — that is what makes AssignBlock a
// faithful owner-computes baseline), and runs the initial assignment.
func (st *pairPlan) stepPartition(ctx context.Context, x *engine.Exec) error {
	st.r.files = []pairFiles{{fA: st.ra.File(), fB: st.rb.File()}}
	ci := 0
	for fi := range st.ma.Fields {
		fm := st.ma.Fields[fi]
		if !st.selected(fm.Name) {
			continue
		}
		if ci < len(st.candidates) && st.candidates[ci].field == fi {
			st.r.addUnits(0, fi, fm, st.mb.Fields[fi].Tree, st.candidates[ci].chunks,
				st.ra.FieldFileOffset(fi), st.rb.FieldFileOffset(fi))
			ci++
		}
		st.r.totalChunks += int64(fm.Tree.NumChunks())
	}
	st.r.assign()
	return nil
}

// stepExecute fans the units out over the workers and charges the
// resulting makespan — the sharded analogue of the overlapped stage-2
// pipeline time.
func (st *pairPlan) stepExecute(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	if err := st.r.execute(ctx); err != nil {
		return err
	}
	st.res.BytesRead += st.r.bytesRead
	st.res.ReadRetries += int(st.r.retries)
	st.res.Breakdown.AddVirtual(metrics.PhaseCompareDirect, st.r.stats.MakespanVirtual)
	st.res.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	x.AddVirtual(st.r.stats.MakespanVirtual)
	return nil
}

// stepReport folds the hierarchical reduction into the Result: per-field
// diff lists ascending in field order, changed/unverified chunk counts,
// element totals over selected fields — the same shape, in the same
// order, as the single-node report.
func (st *pairPlan) stepReport(ctx context.Context, x *engine.Exec) error {
	for fi := range st.ma.Fields {
		fm := st.ma.Fields[fi]
		if !st.selected(fm.Name) {
			continue
		}
		st.res.TotalElements += fm.Tree.DataLen() / int64(fm.DType.Size())
		f := st.r.fold(0, fi)
		if f == nil {
			continue
		}
		st.res.ChangedChunks += int(f.changed)
		if f.unverified > 0 {
			st.res.Degraded = true
			st.res.UnverifiedChunks += int(f.unverified)
		}
		if idx := f.sortedDiffs(); len(idx) > 0 {
			st.res.Diffs = append(st.res.Diffs, compare.FieldDiff{Field: fm.Name, Indices: idx})
			st.res.DiffCount += int64(len(idx))
		}
	}
	return nil
}
