package shard

import (
	"fmt"
	"time"

	"context"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/engine"
	"repro/internal/merkle"
	"repro/internal/metrics"
	"repro/internal/murmur3"
	"repro/internal/pfs"
	"repro/internal/simclock"
)

// groupPlan carries one sharded N-run group comparison through its plan
// steps. Stage 1 (metadata once per member, tree diffs per topology pair)
// runs on the coordinator exactly as in the single-node group path; every
// pair's divergent subtrees then join ONE shared unit pool, so the
// worker fleet load-balances across pairs as well as within them.
type groupPlan struct {
	r       *run
	members []string
	topo    compare.Topology
	rep     *compare.GroupReport

	readers  []*ckpt.Reader
	metas    []*compare.Metadata
	selected func(string) bool
	pairIdx  [][2]int
	// pairCands[p][f] holds pair p's candidate chunks in field f
	// (nil when the field's trees match).
	pairCands [][][]int

	startOps, startBytes int64
	totalElements        int64
}

// GroupCompare compares N runs' checkpoints as one sharded group: member
// metadata loads once, every topology pair's tree diff runs from the
// in-memory trees, and the union of all pairs' divergent subtrees is
// executed across cfg.Workers workers under the budget/stealing regime.
// Member 0 is the baseline. The per-pair Results are bit-identical —
// diffs, verdicts, chunk accounting — to compare.GroupCompare over the
// same inputs; Stats reports the scale-out execution itself.
func GroupCompare(ctx context.Context, store *pfs.Store, baseline string, runs []string, topology compare.Topology, cfg Config, opts compare.Options) (*compare.GroupReport, *Stats, error) {
	opts, err := opts.Normalize()
	if err != nil {
		return nil, nil, err
	}
	cfg, err = cfg.normalized(opts)
	if err != nil {
		return nil, nil, err
	}
	if len(runs) == 0 {
		return nil, nil, fmt.Errorf("shard: group needs at least one run besides the baseline")
	}
	members := append([]string{baseline}, runs...)
	pairIdx, err := topology.PairList(len(members))
	if err != nil {
		return nil, nil, err
	}
	st := &groupPlan{
		r:       newRun(store, cfg, opts),
		members: members,
		topo:    topology,
		pairIdx: pairIdx,
		rep:     &compare.GroupReport{Members: members, Topology: topology},
	}
	var p engine.Plan
	p.Retry = opts.Retry
	open := p.Add(engine.StepSetup, "open-members", st.stepOpenMembers)
	load := p.Add(engine.StepLoadMetadata, "load-metadata", st.stepLoadMembers, open)
	diff := p.Add(engine.StepTreeDiff, "tree-diff", st.stepPairDiffs, load)
	part := p.Add(engine.StepPartition, "partition", st.stepPartition, diff)
	exec := p.Add(engine.StepShardExecute, "shard-execute", st.stepExecute, part)
	p.Add(engine.StepReport, "report", st.stepReport, exec)
	erep, err := engine.Execute(ctx, &p)
	st.rep.Steps = erep.Steps
	if err != nil {
		return nil, nil, err
	}
	return st.rep, &st.r.stats, nil
}

// stepOpenMembers opens every member once and validates schema parity.
func (st *groupPlan) stepOpenMembers(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	st.startOps, st.startBytes = st.r.store.ReadStats()
	st.readers = make([]*ckpt.Reader, len(st.members))
	for i, name := range st.members {
		r, _, err := ckpt.OpenReader(st.r.store, name)
		if err != nil {
			return err
		}
		x.CloseOnExit(r)
		st.readers[i] = r
		if i > 0 && !ckpt.SameSchema(st.readers[0].Meta(), r.Meta()) {
			return fmt.Errorf("shard: %s and %s have different schemas", st.members[0], name)
		}
	}
	st.rep.CheckpointBytes = st.readers[0].Meta().TotalBytes()
	st.rep.Breakdown.AddVirtual(metrics.PhaseSetup, st.r.opts.SetupVirtual)
	st.rep.Breakdown.AddWall(metrics.PhaseSetup, sw.Lap())
	x.AddVirtual(st.r.opts.SetupVirtual)
	return nil
}

// stepLoadMembers loads each member's metadata exactly once and validates
// every member against the baseline's ε and field layout.
func (st *groupPlan) stepLoadMembers(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	model := st.r.store.Model()
	sharers := st.r.store.Sharers()
	st.metas = make([]*compare.Metadata, len(st.members))
	var metaCost pfs.Cost
	var deserWall time.Duration
	for i, name := range st.members {
		m, cost, dwall, err := compare.LoadMetadata(ctx, st.r.store, name)
		if err != nil {
			return err
		}
		metaCost.Add(cost)
		deserWall += dwall
		st.metas[i] = m
		if i > 0 {
			if err := compare.CheckMetaPair(st.metas[0], m, st.r.opts.Epsilon); err != nil {
				return err
			}
		}
	}
	st.rep.MemberRoots = make([]murmur3.Digest, len(st.metas))
	for i, m := range st.metas {
		st.rep.MemberRoots[i] = m.CombinedRoot()
	}
	st.rep.MetadataBytes = st.metas[0].Bytes()
	st.rep.BytesRead += metaCost.TotalBytes()
	readV := model.SerialReadTime(metaCost, sharers)
	deserV := simclock.BandwidthTime(metaCost.TotalBytes(), deserializeBytesPerSec)
	st.rep.Breakdown.AddVirtual(metrics.PhaseRead, readV)
	st.rep.Breakdown.AddWall(metrics.PhaseRead, sw.Lap())
	st.rep.Breakdown.AddVirtual(metrics.PhaseDeserialize, deserV)
	st.rep.Breakdown.AddWall(metrics.PhaseDeserialize, deserWall)
	x.AddVirtual(readV + deserV)

	fieldNames := make([]string, len(st.metas[0].Fields))
	for i := range fieldNames {
		fieldNames[i] = st.metas[0].Fields[i].Name
	}
	selected, err := st.r.opts.FieldFilter(fieldNames)
	if err != nil {
		return err
	}
	st.selected = selected
	for _, fm := range st.metas[0].Fields {
		if selected(fm.Name) {
			st.totalElements += fm.Tree.DataLen() / int64(fm.DType.Size())
		}
	}
	return nil
}

// stepPairDiffs runs stage 1 for every pair from the in-memory trees —
// no additional I/O regardless of pair count — with the single-node
// group path's traversal and pricing.
func (st *groupPlan) stepPairDiffs(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	exec := device.Cancelable{Done: ctx.Done(), Inner: st.r.opts.Exec}
	nFields := len(st.metas[0].Fields)
	st.pairCands = make([][][]int, len(st.pairIdx))
	st.rep.Pairs = make([]compare.GroupPairReport, len(st.pairIdx))
	var treeVirtual time.Duration
	for pi, pr := range st.pairIdx {
		a, b := pr[0], pr[1]
		res := &compare.Result{
			Method:          "merkle-shard-group",
			CheckpointBytes: st.rep.CheckpointBytes,
			MetadataBytes:   st.rep.MetadataBytes,
			TotalElements:   st.totalElements,
		}
		st.rep.Pairs[pi] = compare.GroupPairReport{
			A: a, B: b, NameA: st.members[a], NameB: st.members[b], Result: res,
		}
		st.pairCands[pi] = make([][]int, nFields)
		for fi := 0; fi < nFields; fi++ {
			fm := st.metas[a].Fields[fi]
			if !st.selected(fm.Name) {
				continue
			}
			ta, tb := fm.Tree, st.metas[b].Fields[fi].Tree
			start := st.r.opts.StartLevel
			if start < 0 {
				start = ta.DefaultStartLevel(exec.Workers())
			}
			chunks, nodes, err := merkle.Diff(ta, tb, start, exec)
			if err != nil {
				return fmt.Errorf("shard: pair %s vs %s field %q: %w",
					st.members[a], st.members[b], fm.Name, err)
			}
			if cerr := ctx.Err(); cerr != nil {
				return cerr
			}
			res.TotalChunks += ta.NumChunks()
			res.CandidateChunks += len(chunks)
			if len(chunks) > 0 {
				st.pairCands[pi][fi] = chunks
			}
			levels := ta.Depth() - start + 1
			treeVirtual += time.Duration(levels)*st.r.opts.Device.KernelLaunch +
				simclock.BandwidthTime(nodes*16, float64(st.r.opts.Device.NodeHashesPerSec)*16)
		}
	}
	st.rep.Breakdown.AddVirtual(metrics.PhaseCompareTree, treeVirtual)
	st.rep.Breakdown.AddWall(metrics.PhaseCompareTree, sw.Lap())
	x.AddVirtual(treeVirtual)
	return nil
}

// stepPartition pools every pair's divergent subtrees into one unit list
// — the global chunk key space concatenates (pair, field) extents in
// topology order — and runs the initial assignment over it. Offsets come
// from each pair's own member files, so a unit is self-describing no
// matter which worker ends up streaming it.
func (st *groupPlan) stepPartition(ctx context.Context, x *engine.Exec) error {
	st.r.files = make([]pairFiles, len(st.pairIdx))
	for pi, pr := range st.pairIdx {
		st.r.files[pi] = pairFiles{
			fA: st.readers[pr[0]].File(),
			fB: st.readers[pr[1]].File(),
		}
	}
	for pi, pr := range st.pairIdx {
		a, b := pr[0], pr[1]
		for fi := range st.metas[a].Fields {
			fm := st.metas[a].Fields[fi]
			if !st.selected(fm.Name) {
				continue
			}
			if chunks := st.pairCands[pi][fi]; len(chunks) > 0 {
				st.r.addUnits(pi, fi, fm, st.metas[b].Fields[fi].Tree, chunks,
					st.readers[a].FieldFileOffset(fi), st.readers[b].FieldFileOffset(fi))
			}
			st.r.totalChunks += int64(fm.Tree.NumChunks())
		}
	}
	st.r.assign()
	return nil
}

// stepExecute fans the pooled units out over the workers and charges the
// resulting makespan as the group's overlapped stage-2 time.
func (st *groupPlan) stepExecute(ctx context.Context, x *engine.Exec) error {
	sw := metrics.NewStopwatch()
	if err := st.r.execute(ctx); err != nil {
		return err
	}
	st.rep.BytesRead += st.r.bytesRead
	st.rep.ReadRetries += int(st.r.retries)
	st.rep.PipelineVirtual = st.r.stats.MakespanVirtual
	st.rep.Breakdown.AddVirtual(metrics.PhaseCompareDirect, st.r.stats.MakespanVirtual)
	st.rep.Breakdown.AddWall(metrics.PhaseCompareDirect, sw.Lap())
	x.AddVirtual(st.r.stats.MakespanVirtual)
	return nil
}

// stepReport folds each pair's hierarchical reduction into its Result —
// per-field diff lists ascending in field order, changed/unverified
// chunk counts — and finalizes the store-level I/O accounting.
func (st *groupPlan) stepReport(ctx context.Context, x *engine.Exec) error {
	for pi, pr := range st.pairIdx {
		res := st.rep.Pairs[pi].Result
		for fi := range st.metas[pr[0]].Fields {
			fm := st.metas[pr[0]].Fields[fi]
			if !st.selected(fm.Name) {
				continue
			}
			f := st.r.fold(pi, fi)
			if f == nil {
				continue
			}
			res.ChangedChunks += int(f.changed)
			if f.unverified > 0 {
				res.Degraded = true
				res.UnverifiedChunks += int(f.unverified)
			}
			if idx := f.sortedDiffs(); len(idx) > 0 {
				res.Diffs = append(res.Diffs, compare.FieldDiff{Field: fm.Name, Indices: idx})
				res.DiffCount += int64(len(idx))
			}
		}
	}
	ops, bytes := st.r.store.ReadStats()
	st.rep.ReadOps = ops - st.startOps
	st.rep.ReadBytes = bytes - st.startBytes
	return nil
}
