package shard

import (
	"errors"
	"reflect"
	"testing"

	"repro/internal/mpi"
)

func sampleUnit() *UnitMsg {
	return &UnitMsg{
		Seq: 7, Pair: 1, Field: 2, Subtree: 3, Target: 4, ChunkElems: 1024,
		DType: 1, Epsilon: 1e-4,
		Chunks: []ChunkRefMsg{
			{Index: 5, OffA: 4096, OffB: 8192, Len: 4096,
				DigestA: [16]byte{1, 2, 3}, DigestB: [16]byte{4, 5, 6}},
			{Index: 6, OffA: 8192, OffB: 12288, Len: 4096,
				DigestA: [16]byte{7}, DigestB: [16]byte{8}},
		},
	}
}

func sampleVerdict() *VerdictMsg {
	return &VerdictMsg{
		Seq: 7, Pair: 1, Field: 2, Worker: 3,
		Changed: 1, Unverified: 2, Rereads: 3, Retries: 4,
		Ops: 5, CachedOps: 6, Bytes: 7, CachedBytes: 8,
		BytesRead: 9, IONanos: 10, CompNanos: 11,
		Diffs: []int64{100, 2048, 99999},
	}
}

func sampleDone() *DoneMsg {
	return &DoneMsg{
		Worker: 2, Units: 9, Steals: 3, StolenUnits: 5, Died: 1,
		IONanos: 42, CompNanos: 43, BytesRead: 44, PeakInFlight: 45,
	}
}

// TestWireRoundTripOverMPI sends each message kind through a real mpi
// link — worker rank to coordinator rank — and decodes what arrives: the
// exact path the engine uses.
func TestWireRoundTripOverMPI(t *testing.T) {
	comm, err := mpi.NewComm(2)
	if err != nil {
		t.Fatal(err)
	}
	coord, _ := comm.Rank(0)
	worker, _ := comm.Rank(1)

	u, v, d := sampleUnit(), sampleVerdict(), sampleDone()
	for _, frame := range [][]byte{EncodeUnit(u), EncodeVerdict(v), EncodeDone(d)} {
		if err := worker.Send(0, shardTag, frame); err != nil {
			t.Fatal(err)
		}
	}

	f1, err := coord.Recv(1, shardTag)
	if err != nil {
		t.Fatal(err)
	}
	if kind, err := FrameKind(f1); err != nil || kind != kindUnit {
		t.Fatalf("FrameKind = %d, %v; want unit", kind, err)
	}
	gu, err := DecodeUnit(f1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gu, u) {
		t.Errorf("unit round trip: got %+v, want %+v", gu, u)
	}

	f2, _ := coord.Recv(1, shardTag)
	gv, err := DecodeVerdict(f2)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gv, v) {
		t.Errorf("verdict round trip: got %+v, want %+v", gv, v)
	}

	f3, _ := coord.Recv(1, shardTag)
	gd, err := DecodeDone(f3)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(gd, d) {
		t.Errorf("done round trip: got %+v, want %+v", gd, d)
	}
}

// TestWireRejectsTruncation truncates every frame kind at every length
// and expects a decode error each time — never a silent partial message.
func TestWireRejectsTruncation(t *testing.T) {
	frames := map[string]struct {
		frame  []byte
		decode func([]byte) error
	}{
		"unit":    {EncodeUnit(sampleUnit()), func(b []byte) error { _, err := DecodeUnit(b); return err }},
		"verdict": {EncodeVerdict(sampleVerdict()), func(b []byte) error { _, err := DecodeVerdict(b); return err }},
		"done":    {EncodeDone(sampleDone()), func(b []byte) error { _, err := DecodeDone(b); return err }},
	}
	for name, tc := range frames {
		for n := 0; n < len(tc.frame); n++ {
			if err := tc.decode(tc.frame[:n]); err == nil {
				t.Errorf("%s frame truncated to %d bytes decoded cleanly", name, n)
			}
		}
		if err := tc.decode(nil); err == nil {
			t.Errorf("%s: nil frame decoded cleanly", name)
		}
	}
	// A clean truncation of the parts framing itself maps to ErrTruncated.
	f := EncodeUnit(sampleUnit())
	if _, err := DecodeUnit(f[:3]); !errors.Is(err, ErrTruncated) {
		t.Errorf("parts-level truncation: got %v, want ErrTruncated", err)
	}
}

// TestWireRejectsTrailingBytes appends garbage inside a part and expects
// rejection: a frame that decodes but carries extra bytes is corrupt.
func TestWireRejectsTrailingBytes(t *testing.T) {
	d := sampleDone()
	parts, err := mpi.DecodeParts(EncodeDone(d))
	if err != nil {
		t.Fatal(err)
	}
	parts[1] = append(append([]byte{}, parts[1]...), 0xff)
	if _, err := DecodeDone(mpi.EncodeParts(parts)); err == nil {
		t.Error("done frame with trailing bytes decoded cleanly")
	}
}

// TestWireRejectsWrongKind feeds each decoder a frame of another kind.
func TestWireRejectsWrongKind(t *testing.T) {
	if _, err := DecodeUnit(EncodeDone(sampleDone())); err == nil {
		t.Error("DecodeUnit accepted a done frame")
	}
	if _, err := DecodeVerdict(EncodeUnit(sampleUnit())); err == nil {
		t.Error("DecodeVerdict accepted a unit frame")
	}
	if _, err := DecodeDone(EncodeVerdict(sampleVerdict())); err == nil {
		t.Error("DecodeDone accepted a verdict frame")
	}
}

// TestWireRejectsBadDType rejects a unit whose dtype is not a known
// element type — a worker must not guess an element size.
func TestWireRejectsBadDType(t *testing.T) {
	u := sampleUnit()
	u.DType = 99
	if _, err := DecodeUnit(EncodeUnit(u)); err == nil {
		t.Error("unit with unknown dtype decoded cleanly")
	}
}
