package shard

import (
	"reflect"
	"testing"
)

func TestDequePushPopFIFO(t *testing.T) {
	d := NewDeques[int](2, nil)
	d.Push(0, 1, 2, 3)
	for want := 1; want <= 3; want++ {
		got, ok := d.Pop(0)
		if !ok || got != want {
			t.Fatalf("Pop = %d, %v; want %d, true", got, ok, want)
		}
	}
	if _, ok := d.Pop(0); ok {
		t.Fatal("Pop from empty deque returned ok")
	}
}

// TestDequeStealHalfFromTail verifies the stealing contract: the thief
// takes half the victim's items (rounded up) from the TAIL, leaving the
// victim's head — its locality — untouched, and immediately pops one.
func TestDequeStealHalfFromTail(t *testing.T) {
	d := NewDeques[int](2, nil)
	d.Push(0, 10, 11, 12, 13, 14)
	got, ok := d.Steal(1)
	if !ok {
		t.Fatal("Steal found nothing")
	}
	// 5 items: thief takes ceil(5/2)=3 from the tail {12,13,14} and pops
	// the first of them.
	if got != 12 {
		t.Errorf("stolen head = %d, want 12", got)
	}
	if n := d.Len(1); n != 2 {
		t.Errorf("thief deque len = %d, want 2", n)
	}
	if n := d.Len(0); n != 2 {
		t.Errorf("victim deque len = %d, want 2", n)
	}
	if v, _ := d.Pop(0); v != 10 {
		t.Errorf("victim head = %d, want 10 (locality preserved)", v)
	}
	ops, items := d.StealStats()
	if ops != 1 || items != 3 {
		t.Errorf("StealStats = %d, %d; want 1, 3", ops, items)
	}
	ops, items = d.StealStatsOf(1)
	if ops != 1 || items != 3 {
		t.Errorf("StealStatsOf(1) = %d, %d; want 1, 3", ops, items)
	}
}

// TestDequeStealPicksHeaviest verifies victim selection by weight, not
// item count: one huge unit outweighs many small ones.
func TestDequeStealPicksHeaviest(t *testing.T) {
	weights := map[int]int64{1: 1, 2: 1, 3: 1, 4: 100}
	d := NewDeques[int](3, func(v int) int64 { return weights[v] })
	d.Push(0, 1, 2, 3)
	d.Push(1, 4)
	got, ok := d.Steal(2)
	if !ok || got != 4 {
		t.Fatalf("Steal = %d, %v; want the heavy item 4", got, ok)
	}
}

// TestDequeStealFallsBackToOwnDeque covers the dying-worker hand-back: a
// thief whose own deque was refilled between Pop and Steal must still
// make progress even when every peer is empty.
func TestDequeStealFallsBackToOwnDeque(t *testing.T) {
	d := NewDeques[int](2, nil)
	d.Push(1, 42) // refilled after the owner's failed Pop
	got, ok := d.Steal(1)
	if !ok || got != 42 {
		t.Fatalf("Steal = %d, %v; want own refilled item 42", got, ok)
	}
	if _, ok := d.Steal(1); ok {
		t.Fatal("Steal with all deques empty returned ok")
	}
}

func TestDequeDrain(t *testing.T) {
	d := NewDeques[int](3, nil)
	d.Push(0, 1)
	d.Push(2, 2, 3)
	if got := d.Drain(); !reflect.DeepEqual(got, []int{1, 2, 3}) {
		t.Errorf("Drain = %v, want [1 2 3]", got)
	}
	if got := d.Drain(); got != nil {
		t.Errorf("second Drain = %v, want nil", got)
	}
	if n := d.Len(2); n != 0 {
		t.Errorf("Len after drain = %d, want 0", n)
	}
}
