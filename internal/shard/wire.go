// Package shard implements the scale-out tier of the comparison engine:
// one checkpoint-pair (or N-run group) comparison is split across M
// simulated workers by Merkle subtree. The coordinator runs stage 1 on
// metadata only, prunes equal subtrees, and publishes the divergent ones
// as self-describing work units; workers execute stage 2 out-of-core
// under a bounded buffer budget, steal subtree batches from loaded peers
// when idle, and return per-subtree verdict summaries the coordinator
// folds hierarchically into the same Result/GroupReport the single-node
// path produces — bit-identical diffs, proven against CompareMerkle as
// the oracle.
//
// This file is the wire layer. Work units and verdicts travel as binary
// frames composed on the internal/mpi parts codec (little-endian,
// length-prefixed, truncation-rejecting): a unit carries everything a
// worker needs — offsets, lengths, ε, dtype, and both sides' leaf
// digests — so a worker holds no metadata and any peer can execute any
// stolen unit. Message structs are deliberately flat (no maps, no
// pointer graphs); the shardmsg lint rule enforces this, because
// iteration-order nondeterminism in a wire message would break the
// bit-identity oracle.
package shard

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/errbound"
	"repro/internal/mpi"
	"repro/internal/murmur3"
)

// Frame kinds. Every frame is one mpi parts payload whose first part is
// the header: magic "SHRD", version u16, kind u8.
const (
	frameMagic   = "SHRD"
	wireVersion  = 1
	kindUnit     = 1
	kindVerdict  = 2
	kindDone     = 3
	headerLen    = len(frameMagic) + 3
	chunkRefSize = 4*8 + 2*murmur3.DigestSize
)

// ErrTruncated is returned when a frame or one of its parts is shorter
// than its declared layout.
var ErrTruncated = errors.New("shard: truncated frame")

// ChunkRefMsg locates one candidate chunk inside a work unit: the Merkle
// chunk index within its field, both sides' absolute file offsets and
// the chunk length, plus both sides' leaf digests so a worker can run
// the integrity rung of the degradation ladder without any metadata.
type ChunkRefMsg struct {
	Index      int64
	OffA, OffB int64
	Len        int64
	DigestA    [murmur3.DigestSize]byte
	DigestB    [murmur3.DigestSize]byte
}

// UnitMsg is one self-describing work unit: the candidate chunks of one
// divergent Merkle subtree of one (pair, field). Any worker can execute
// it with nothing but the unit and the two file handles.
type UnitMsg struct {
	// Seq is the coordinator-assigned unit sequence number, unique per
	// comparison; verdicts echo it.
	Seq int64
	// Pair indexes the group's pair list (0 for a pairwise comparison).
	Pair int64
	// Field indexes the checkpoint schema.
	Field int64
	// Subtree is the Merkle node index of the subtree this unit covers.
	Subtree int64
	// Target is the home OST of the unit's byte range (placement).
	Target int64
	// ChunkElems is the element count of a full chunk — the absolute
	// element index of chunk c's element e is c*ChunkElems + e.
	ChunkElems int64
	// DType is the field element type (errbound.DType).
	DType uint8
	// Epsilon is the comparison bound the verdict must be computed at.
	Epsilon float64
	// Chunks are the unit's candidate chunks, ascending by Index.
	Chunks []ChunkRefMsg
}

// Bytes returns the total candidate payload of the unit (one side).
func (u *UnitMsg) Bytes() int64 {
	var n int64
	for i := range u.Chunks {
		n += u.Chunks[i].Len
	}
	return n
}

// VerdictMsg is one executed unit's summary, folded hierarchically by
// the coordinator: per-subtree diff indices and verification accounting.
type VerdictMsg struct {
	Seq    int64
	Pair   int64
	Field  int64
	Worker int64
	// Changed counts chunks that really contained an out-of-bound
	// difference; Unverified counts chunks excluded by the integrity
	// rung; Rereads and Retries count integrity re-reads and transient
	// read retries.
	Changed    int64
	Unverified int64
	Rereads    int64
	Retries    int64
	// Read cost components (pfs.Cost) plus total delivered bytes.
	Ops, CachedOps     int64
	Bytes, CachedBytes int64
	BytesRead          int64
	// IONanos and CompNanos are the unit's virtual read and compute
	// times on this worker's clock.
	IONanos, CompNanos int64
	// Diffs are the absolute element indices that exceeded ε, ascending.
	Diffs []int64
}

// DoneMsg closes a worker's verdict stream and carries its final stats.
type DoneMsg struct {
	Worker       int64
	Units        int64
	Steals       int64
	StolenUnits  int64
	Died         uint8
	IONanos      int64
	CompNanos    int64
	BytesRead    int64
	PeakInFlight int64
}

// header builds the frame header part.
func header(kind uint8) []byte {
	h := make([]byte, 0, headerLen)
	h = append(h, frameMagic...)
	h = binary.LittleEndian.AppendUint16(h, wireVersion)
	h = append(h, kind)
	return h
}

// checkHeader validates a frame header part and returns its kind.
func checkHeader(part []byte) (uint8, error) {
	if len(part) != headerLen {
		return 0, ErrTruncated
	}
	if string(part[:len(frameMagic)]) != frameMagic {
		return 0, fmt.Errorf("shard: bad frame magic %q", part[:len(frameMagic)])
	}
	if v := binary.LittleEndian.Uint16(part[len(frameMagic):]); v != wireVersion {
		return 0, fmt.Errorf("shard: unsupported wire version %d", v)
	}
	return part[headerLen-1], nil
}

// FrameKind sniffs a frame's kind without decoding the body.
func FrameKind(frame []byte) (uint8, error) {
	parts, err := mpi.DecodeParts(frame)
	if err != nil {
		return 0, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if len(parts) < 1 {
		return 0, ErrTruncated
	}
	return checkHeader(parts[0])
}

// cursor is a little-endian reader over one frame part that remembers
// truncation instead of panicking.
type cursor struct {
	b   []byte
	err error
}

func (c *cursor) u8() uint8 {
	if c.err != nil || len(c.b) < 1 {
		c.err = ErrTruncated
		return 0
	}
	v := c.b[0]
	c.b = c.b[1:]
	return v
}

func (c *cursor) i64() int64 {
	if c.err != nil || len(c.b) < 8 {
		c.err = ErrTruncated
		return 0
	}
	v := int64(binary.LittleEndian.Uint64(c.b))
	c.b = c.b[8:]
	return v
}

func (c *cursor) f64() float64 {
	return math.Float64frombits(uint64(c.i64()))
}

func (c *cursor) digest() (d [murmur3.DigestSize]byte) {
	if c.err != nil || len(c.b) < murmur3.DigestSize {
		c.err = ErrTruncated
		return
	}
	copy(d[:], c.b)
	c.b = c.b[murmur3.DigestSize:]
	return d
}

// done reports a fully-consumed part; leftover bytes are a framing error
// too (a frame that decodes but carries trailing garbage is corrupt).
func (c *cursor) done() error {
	if c.err != nil {
		return c.err
	}
	if len(c.b) != 0 {
		return fmt.Errorf("shard: %d trailing bytes in frame part", len(c.b))
	}
	return nil
}

func appendI64(b []byte, v int64) []byte {
	return binary.LittleEndian.AppendUint64(b, uint64(v))
}

// EncodeUnit serializes a work unit as one frame.
func EncodeUnit(u *UnitMsg) []byte {
	fixed := make([]byte, 0, 7*8+1)
	for _, v := range []int64{u.Seq, u.Pair, u.Field, u.Subtree, u.Target, u.ChunkElems} {
		fixed = appendI64(fixed, v)
	}
	fixed = append(fixed, u.DType)
	fixed = appendI64(fixed, int64(math.Float64bits(u.Epsilon)))
	chunks := make([]byte, 0, len(u.Chunks)*chunkRefSize)
	for i := range u.Chunks {
		cr := &u.Chunks[i]
		chunks = appendI64(chunks, cr.Index)
		chunks = appendI64(chunks, cr.OffA)
		chunks = appendI64(chunks, cr.OffB)
		chunks = appendI64(chunks, cr.Len)
		chunks = append(chunks, cr.DigestA[:]...)
		chunks = append(chunks, cr.DigestB[:]...)
	}
	return mpi.EncodeParts([][]byte{header(kindUnit), fixed, chunks})
}

// DecodeUnit inverts EncodeUnit, rejecting truncated or trailing bytes.
func DecodeUnit(frame []byte) (*UnitMsg, error) {
	parts, err := mpi.DecodeParts(frame)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if len(parts) != 3 {
		return nil, fmt.Errorf("shard: unit frame has %d parts, want 3", len(parts))
	}
	kind, err := checkHeader(parts[0])
	if err != nil {
		return nil, err
	}
	if kind != kindUnit {
		return nil, fmt.Errorf("shard: frame kind %d is not a unit", kind)
	}
	u := &UnitMsg{}
	c := &cursor{b: parts[1]}
	u.Seq, u.Pair, u.Field = c.i64(), c.i64(), c.i64()
	u.Subtree, u.Target, u.ChunkElems = c.i64(), c.i64(), c.i64()
	u.DType = c.u8()
	u.Epsilon = c.f64()
	if err := c.done(); err != nil {
		return nil, err
	}
	if len(parts[2])%chunkRefSize != 0 {
		return nil, ErrTruncated
	}
	u.Chunks = make([]ChunkRefMsg, len(parts[2])/chunkRefSize)
	cc := &cursor{b: parts[2]}
	for i := range u.Chunks {
		cr := &u.Chunks[i]
		cr.Index, cr.OffA, cr.OffB, cr.Len = cc.i64(), cc.i64(), cc.i64(), cc.i64()
		cr.DigestA, cr.DigestB = cc.digest(), cc.digest()
	}
	if err := cc.done(); err != nil {
		return nil, err
	}
	if errbound.DType(u.DType).Size() == 0 {
		return nil, fmt.Errorf("shard: unit %d has unknown dtype %d", u.Seq, u.DType)
	}
	return u, nil
}

// EncodeVerdict serializes a verdict as one frame.
func EncodeVerdict(v *VerdictMsg) []byte {
	fixed := make([]byte, 0, 15*8)
	for _, x := range []int64{
		v.Seq, v.Pair, v.Field, v.Worker,
		v.Changed, v.Unverified, v.Rereads, v.Retries,
		v.Ops, v.CachedOps, v.Bytes, v.CachedBytes,
		v.BytesRead, v.IONanos, v.CompNanos,
	} {
		fixed = appendI64(fixed, x)
	}
	diffs := make([]byte, 0, len(v.Diffs)*8)
	for _, d := range v.Diffs {
		diffs = appendI64(diffs, d)
	}
	return mpi.EncodeParts([][]byte{header(kindVerdict), fixed, diffs})
}

// DecodeVerdict inverts EncodeVerdict.
func DecodeVerdict(frame []byte) (*VerdictMsg, error) {
	parts, err := mpi.DecodeParts(frame)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if len(parts) != 3 {
		return nil, fmt.Errorf("shard: verdict frame has %d parts, want 3", len(parts))
	}
	kind, err := checkHeader(parts[0])
	if err != nil {
		return nil, err
	}
	if kind != kindVerdict {
		return nil, fmt.Errorf("shard: frame kind %d is not a verdict", kind)
	}
	v := &VerdictMsg{}
	c := &cursor{b: parts[1]}
	v.Seq, v.Pair, v.Field, v.Worker = c.i64(), c.i64(), c.i64(), c.i64()
	v.Changed, v.Unverified, v.Rereads, v.Retries = c.i64(), c.i64(), c.i64(), c.i64()
	v.Ops, v.CachedOps, v.Bytes, v.CachedBytes = c.i64(), c.i64(), c.i64(), c.i64()
	v.BytesRead, v.IONanos, v.CompNanos = c.i64(), c.i64(), c.i64()
	if err := c.done(); err != nil {
		return nil, err
	}
	if len(parts[2])%8 != 0 {
		return nil, ErrTruncated
	}
	v.Diffs = make([]int64, len(parts[2])/8)
	cc := &cursor{b: parts[2]}
	for i := range v.Diffs {
		v.Diffs[i] = cc.i64()
	}
	return v, cc.done()
}

// EncodeDone serializes a worker's closing stats frame.
func EncodeDone(d *DoneMsg) []byte {
	fixed := make([]byte, 0, 8*8+1)
	for _, x := range []int64{d.Worker, d.Units, d.Steals, d.StolenUnits} {
		fixed = appendI64(fixed, x)
	}
	fixed = append(fixed, d.Died)
	for _, x := range []int64{d.IONanos, d.CompNanos, d.BytesRead, d.PeakInFlight} {
		fixed = appendI64(fixed, x)
	}
	return mpi.EncodeParts([][]byte{header(kindDone), fixed})
}

// DecodeDone inverts EncodeDone.
func DecodeDone(frame []byte) (*DoneMsg, error) {
	parts, err := mpi.DecodeParts(frame)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrTruncated, err)
	}
	if len(parts) != 2 {
		return nil, fmt.Errorf("shard: done frame has %d parts, want 2", len(parts))
	}
	kind, err := checkHeader(parts[0])
	if err != nil {
		return nil, err
	}
	if kind != kindDone {
		return nil, fmt.Errorf("shard: frame kind %d is not a done marker", kind)
	}
	d := &DoneMsg{}
	c := &cursor{b: parts[1]}
	d.Worker, d.Units, d.Steals, d.StolenUnits = c.i64(), c.i64(), c.i64(), c.i64()
	d.Died = c.u8()
	d.IONanos, d.CompNanos, d.BytesRead, d.PeakInFlight = c.i64(), c.i64(), c.i64(), c.i64()
	return d, c.done()
}
