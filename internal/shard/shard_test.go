package shard

import (
	"context"
	"encoding/binary"
	"errors"
	"math"
	"reflect"
	"runtime"
	"sync"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/faults"
	"repro/internal/pfs"
	"repro/internal/synth"
)

const (
	testEps   = 1e-3
	testChunk = 4096 // 1024 float32 elements per chunk
)

func testOpts() compare.Options {
	return compare.Options{
		Epsilon:   testEps,
		ChunkSize: testChunk,
		Exec:      device.NewParallel(2),
	}
}

// env is a pair of synthetic checkpoints with saved Merkle metadata.
type env struct {
	store        *pfs.Store
	nameA, nameB string
}

// bumpF32 pushes the float32 at element index i of data beyond ε.
func bumpF32(data []byte, i int) {
	v := math.Float32frombits(binary.LittleEndian.Uint32(data[i*4:]))
	binary.LittleEndian.PutUint32(data[i*4:], math.Float32bits(v+float32(50*testEps)))
}

// perturbUniform diverges one element per chunk across the whole field —
// every subtree of every field becomes a candidate.
func perturbUniform(fi int, data []byte) {
	elems := len(data) / 4
	for i := 0; i < elems; i += testChunk / 4 {
		bumpF32(data, i)
	}
}

// perturbSkewed diverges only the first quarter of field 0: all candidate
// subtrees land in a narrow band at the front of the global key space,
// the workload shape that punishes static block assignment.
func perturbSkewed(fi int, data []byte) {
	if fi != 0 {
		return
	}
	elems := len(data) / 4
	for i := 0; i < elems/4; i += testChunk / 4 {
		bumpF32(data, i)
	}
}

// newEnv writes two checkpoints (B mutated from A per field) plus their
// metadata and evicts the cache so every comparison starts cold.
func newEnv(t *testing.T, elems int, opts compare.Options, mutateB func(fi int, data []byte)) *env {
	t.Helper()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const nFields = 3
	fields := make([]ckpt.FieldSpec, nFields)
	dataA := make([][]byte, nFields)
	dataB := make([][]byte, nFields)
	for fi, n := range []string{"x", "vx", "phi"} {
		fields[fi] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(elems)}
		dataA[fi] = synth.FieldF32(elems, int64(100+fi))
		dataB[fi] = append([]byte{}, dataA[fi]...)
		if mutateB != nil {
			mutateB(fi, dataB[fi])
		}
	}
	e := &env{store: store, nameA: ckpt.Name("runA", 10, 0), nameB: ckpt.Name("runB", 10, 0)}
	for _, rd := range []struct {
		meta ckpt.Meta
		name string
		data [][]byte
	}{
		{ckpt.Meta{RunID: "runA", Iteration: 10, Rank: 0, Fields: fields}, e.nameA, dataA},
		{ckpt.Meta{RunID: "runB", Iteration: 10, Rank: 0, Fields: fields}, e.nameB, dataB},
	} {
		if _, err := ckpt.WriteCheckpoint(store, rd.meta, rd.data); err != nil {
			t.Fatal(err)
		}
		m, _, err := compare.Build(fields, rd.data, opts)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := compare.SaveMetadata(store, rd.name, m); err != nil {
			t.Fatal(err)
		}
	}
	store.EvictAll()
	return e
}

// assertSameResult asserts the sharded result is bit-identical to the
// single-node oracle in everything the comparison proves: diff indices,
// verdict flags, and chunk/element accounting. Pricing fields (Breakdown,
// BytesRead) are intentionally excluded — the sharded cost model differs.
func assertSameResult(t *testing.T, label string, got, want *compare.Result) {
	t.Helper()
	if got.DiffCount != want.DiffCount {
		t.Errorf("%s: DiffCount = %d, oracle %d", label, got.DiffCount, want.DiffCount)
	}
	if !reflect.DeepEqual(got.Diffs, want.Diffs) {
		t.Errorf("%s: Diffs diverge from oracle", label)
	}
	if got.ChangedChunks != want.ChangedChunks {
		t.Errorf("%s: ChangedChunks = %d, oracle %d", label, got.ChangedChunks, want.ChangedChunks)
	}
	if got.CandidateChunks != want.CandidateChunks {
		t.Errorf("%s: CandidateChunks = %d, oracle %d", label, got.CandidateChunks, want.CandidateChunks)
	}
	if got.TotalChunks != want.TotalChunks {
		t.Errorf("%s: TotalChunks = %d, oracle %d", label, got.TotalChunks, want.TotalChunks)
	}
	if got.TotalElements != want.TotalElements {
		t.Errorf("%s: TotalElements = %d, oracle %d", label, got.TotalElements, want.TotalElements)
	}
	if got.UnverifiedChunks != want.UnverifiedChunks || got.Degraded != want.Degraded {
		t.Errorf("%s: degradation (%d, %v), oracle (%d, %v)", label,
			got.UnverifiedChunks, got.Degraded, want.UnverifiedChunks, want.Degraded)
	}
	if got.Identical() != want.Identical() {
		t.Errorf("%s: Identical = %v, oracle %v", label, got.Identical(), want.Identical())
	}
}

// waitGoroutines polls until the goroutine count settles back to at most
// base — the zero-leak assertion for every execute path.
func waitGoroutines(t *testing.T, base int) {
	t.Helper()
	deadline := time.Now().Add(10 * time.Second)
	for {
		runtime.GC()
		if n := runtime.NumGoroutine(); n <= base {
			return
		}
		if time.Now().After(deadline) {
			buf := make([]byte, 128<<10)
			t.Fatalf("goroutines leaked: %d > %d\n%s",
				runtime.NumGoroutine(), base, buf[:runtime.Stack(buf, true)])
		}
		time.Sleep(10 * time.Millisecond)
	}
}

// TestCompareOracle sweeps the configuration grid — worker counts,
// stealing, every assignment policy, striped and unstriped stores, a
// budget forcing multi-batch units — and requires bit-identity with
// CompareMerkle on both a uniform and a skewed divergence workload.
func TestCompareOracle(t *testing.T) {
	workloads := map[string]func(int, []byte){
		"uniform": perturbUniform,
		"skewed":  perturbSkewed,
	}
	for wname, mutate := range workloads {
		opts := testOpts()
		e := newEnv(t, 64<<10, opts, mutate)
		oracle, err := compare.CompareMerkle(context.Background(), e.store, e.nameA, e.nameB, opts)
		if err != nil {
			t.Fatal(err)
		}
		if oracle.DiffCount == 0 {
			t.Fatalf("%s: oracle found no diffs; workload is degenerate", wname)
		}
		cfgs := map[string]Config{
			"1worker":      {Workers: 1},
			"4block":       {Workers: 4, Assignment: AssignBlock},
			"4block-steal": {Workers: 4, Assignment: AssignBlock, Stealing: true},
			"4placement":   {Workers: 4, Assignment: AssignPlacement, Stealing: true},
			"4random":      {Workers: 4, Assignment: AssignRandom, Seed: 7},
			"8tinybudget":  {Workers: 8, Stealing: true, Budget: 2 * testChunk, SubtreeChunks: 4},
		}
		for cname, cfg := range cfgs {
			for _, striped := range []bool{false, true} {
				label := wname + "/" + cname
				if striped {
					label += "/striped"
					if err := e.store.SetStriping(pfs.Striping{Targets: 4, StripeBytes: 8 * testChunk}); err != nil {
						t.Fatal(err)
					}
				} else {
					if err := e.store.SetStriping(pfs.Striping{}); err != nil {
						t.Fatal(err)
					}
				}
				e.store.EvictAll()
				base := runtime.NumGoroutine()
				res, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
				if err != nil {
					t.Fatalf("%s: %v", label, err)
				}
				waitGoroutines(t, base)
				assertSameResult(t, label, res, oracle)
				if res.Method != "merkle-shard" {
					t.Errorf("%s: method %q", label, res.Method)
				}
				if stats.Units == 0 {
					t.Errorf("%s: no work units for a divergent pair", label)
				}
				if stats.PeakInFlight > stats.BudgetBytes {
					t.Errorf("%s: peak in-flight %d exceeds budget %d", label, stats.PeakInFlight, stats.BudgetBytes)
				}
			}
		}
	}
}

// TestCompareIdenticalRuns: zero divergence means zero units and a clean
// empty report, same as the oracle's.
func TestCompareIdenticalRuns(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 16<<10, opts, nil)
	oracle, err := compare.CompareMerkle(context.Background(), e.store, e.nameA, e.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	res, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, Config{Workers: 4}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "identical", res, oracle)
	if stats.Units != 0 || !res.Identical() {
		t.Errorf("identical runs: units = %d, Identical = %v", stats.Units, res.Identical())
	}
}

// TestBudgetInvariant forces multi-batch units with a minimal budget and
// asserts the gauge never saw more than Budget bytes in flight on any
// worker. Run under -race this also exercises the atomic gauge across
// worker goroutines.
func TestBudgetInvariant(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	cfg := Config{Workers: 4, Stealing: true, Budget: 2 * testChunk, SubtreeChunks: 8}
	_, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	if stats.PeakInFlight <= 0 || stats.PeakInFlight > cfg.Budget {
		t.Errorf("peak in-flight %d outside (0, %d]", stats.PeakInFlight, cfg.Budget)
	}
	for w, pw := range stats.PerWorker {
		if pw.PeakInFlight > cfg.Budget {
			t.Errorf("worker %d peak in-flight %d exceeds budget %d", w, pw.PeakInFlight, cfg.Budget)
		}
	}
}

// TestBudgetRejectsSubChunk: a budget below one chunk pair can never make
// progress and must be rejected up front.
func TestBudgetRejectsSubChunk(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 4<<10, opts, nil)
	_, _, err := Compare(context.Background(), e.store, e.nameA, e.nameB, Config{Budget: testChunk}, opts)
	if err == nil {
		t.Fatal("budget below 2×chunk accepted")
	}
}

// TestChaosKillRestealed kills one worker mid-comparison with stealing
// on: peers re-steal its returned unit, the report stays bit-identical,
// and no goroutine leaks.
func TestChaosKillRestealed(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	oracle, err := compare.CompareMerkle(context.Background(), e.store, e.nameA, e.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.store.EvictAll()
	base := runtime.NumGoroutine()
	cfg := Config{Workers: 4, Stealing: true, Chaos: Chaos{Enabled: true, Worker: 1, AfterUnits: 1}}
	res, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
	assertSameResult(t, "chaos-steal", res, oracle)
	if stats.WorkerFailures != 1 || !stats.PerWorker[1].Died {
		t.Errorf("worker failures = %d, died[1] = %v; want 1, true", stats.WorkerFailures, stats.PerWorker[1].Died)
	}
	if stats.Steals == 0 && stats.CoordinatorUnits == 0 {
		t.Error("killed worker's units were neither stolen nor drained")
	}
}

// TestChaosKillCoordinatorDrain kills a worker with stealing OFF: nobody
// re-steals, so the coordinator's drain fallback must execute the
// orphaned units itself — degraded throughput, never a dropped verdict.
func TestChaosKillCoordinatorDrain(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	oracle, err := compare.CompareMerkle(context.Background(), e.store, e.nameA, e.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.store.EvictAll()
	base := runtime.NumGoroutine()
	cfg := Config{Workers: 4, Chaos: Chaos{Enabled: true, Worker: 0, AfterUnits: 0}}
	res, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
	assertSameResult(t, "chaos-drain", res, oracle)
	if stats.CoordinatorUnits == 0 {
		t.Error("no coordinator drain despite a dead worker and stealing off")
	}
	if stats.WorkerFailures != 1 {
		t.Errorf("worker failures = %d, want 1", stats.WorkerFailures)
	}
	if stats.MakespanVirtual <= 0 {
		t.Error("makespan not accounted")
	}
}

// TestDegradeIntegrityReread flips bits on two reads under Degrade: the
// integrity rung catches the corruption against the unit's leaf digests
// and the one-shot re-read recovers clean bytes, so the report stays
// bit-identical and undegraded.
func TestDegradeIntegrityReread(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	oracle, err := compare.CompareMerkle(context.Background(), e.store, e.nameA, e.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.store.EvictAll()
	opts.Degrade = true
	// Two one-shot flips spaced apart: a Count-bounded rule that can fire
	// on consecutive reads would corrupt the integrity re-read too.
	inj := faults.New(1,
		faults.Rule{Kind: faults.BitFlip, Name: e.nameB, After: 4},
		faults.Rule{Kind: faults.BitFlip, Name: e.nameB, After: 9})
	e.store.SetFaultHook(inj)
	defer e.store.SetFaultHook(nil)
	res, _, err := Compare(context.Background(), e.store, e.nameA, e.nameB, Config{Workers: 4, Stealing: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	assertSameResult(t, "bitflip-reread", res, oracle)
	if got := inj.Stats(); got.BitFlips == 0 {
		t.Skip("fault schedule never fired (reads landed elsewhere)")
	}
}

// TestDegradeUnreadable makes every read of run B's container fail
// permanently partway through: with Degrade the comparison must complete
// with the affected chunks counted unverified, never dropped or
// miscounted as clean.
func TestDegradeUnreadable(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	oracle, err := compare.CompareMerkle(context.Background(), e.store, e.nameA, e.nameB, opts)
	if err != nil {
		t.Fatal(err)
	}
	e.store.EvictAll()
	opts.Degrade = true
	inj := faults.New(1, faults.Rule{Kind: faults.PermanentRead, Name: e.nameB, After: 8, Count: -1})
	e.store.SetFaultHook(inj)
	defer e.store.SetFaultHook(nil)
	base := runtime.NumGoroutine()
	res, _, err := Compare(context.Background(), e.store, e.nameA, e.nameB, Config{Workers: 4, Stealing: true}, opts)
	if err != nil {
		t.Fatal(err)
	}
	waitGoroutines(t, base)
	if !res.Degraded || res.UnverifiedChunks == 0 {
		t.Fatalf("Degraded = %v, UnverifiedChunks = %d; want degraded report", res.Degraded, res.UnverifiedChunks)
	}
	if res.Identical() {
		t.Error("degraded report claims a clean match")
	}
	if res.DiffCount > oracle.DiffCount {
		t.Errorf("degraded DiffCount %d exceeds oracle %d", res.DiffCount, oracle.DiffCount)
	}
	if res.ChangedChunks+res.UnverifiedChunks > res.CandidateChunks {
		t.Errorf("changed %d + unverified %d exceed candidates %d",
			res.ChangedChunks, res.UnverifiedChunks, res.CandidateChunks)
	}
}

// cancelHook cancels a context after N reads of one file — a
// deterministic mid-stage-2 cancellation.
type cancelHook struct {
	name   string
	after  int
	cancel context.CancelFunc

	mu    sync.Mutex
	count int
}

func (h *cancelHook) BeforeRead(name string, off int64, n int) error {
	if name == h.name {
		h.mu.Lock()
		h.count++
		fire := h.count == h.after
		h.mu.Unlock()
		if fire {
			h.cancel()
		}
	}
	return nil
}

func (h *cancelHook) AfterRead(name string, off int64, p []byte) pfs.Cost { return pfs.Cost{} }

func (h *cancelHook) BeforeWrite(name string, off int64, n int) (int, error) { return 0, nil }

// TestCancellation cancels the context from inside a stage-2 read:
// workers stop, the error propagates, and nothing leaks.
func TestCancellation(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	ctx, cancel := context.WithCancel(context.Background())
	defer cancel()
	e.store.SetFaultHook(&cancelHook{name: e.nameB, after: 4, cancel: cancel})
	defer e.store.SetFaultHook(nil)
	base := runtime.NumGoroutine()
	_, _, err := Compare(ctx, e.store, e.nameA, e.nameB, Config{Workers: 4, Stealing: true}, opts)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("err = %v, want context.Canceled", err)
	}
	waitGoroutines(t, base)
}

// TestStealingBeatsStatic is the scale-out claim on the skewed workload:
// with 8 workers and every divergent subtree in the front of the key
// space, work stealing must cut the virtual makespan at least 1.5× vs
// the static block assignment. This mirrors BENCH_shard's tracked floor.
func TestStealingBeatsStatic(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 128<<10, opts, perturbSkewed)
	if err := e.store.SetStriping(pfs.Striping{Targets: 8, StripeBytes: 8 * testChunk}); err != nil {
		t.Fatal(err)
	}
	run := func(stealing bool) *Stats {
		e.store.EvictAll()
		cfg := Config{Workers: 8, Assignment: AssignBlock, Stealing: stealing, SubtreeChunks: 4}
		_, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	static := run(false)
	steal := run(true)
	if steal.Steals == 0 {
		t.Fatal("stealing run recorded no steals on a skewed workload")
	}
	if float64(static.MakespanVirtual) < 1.5*float64(steal.MakespanVirtual) {
		t.Errorf("stealing makespan %v not ≥1.5× better than static %v",
			steal.MakespanVirtual, static.MakespanVirtual)
	}
}

// TestPlacementBeatsRandom is the striping claim on the uniform workload:
// placement-aware assignment keeps each OST read by one worker, so its
// total read virtual time beats random assignment, whose every target is
// shared by many workers. It runs at a larger chunk size than the other
// tests: with 4KiB chunks the Lustre pricing is latency-dominated and an
// out-of-order schedule can turn boundary-page residency into whole-op
// cache hits, drowning the contention signal; at 64KiB no single chunk
// read can ever be fully cached, so the per-target sharers factor on the
// bandwidth term is the only difference between the policies.
func TestPlacementBeatsRandom(t *testing.T) {
	const bigChunk = 64 << 10
	opts := testOpts()
	opts.ChunkSize = bigChunk
	e := newEnv(t, 256<<10, opts, func(fi int, data []byte) {
		for i := 0; i < len(data)/4; i += bigChunk / 4 {
			bumpF32(data, i)
		}
	})
	if err := e.store.SetStriping(pfs.Striping{Targets: 4, StripeBytes: 2 * bigChunk}); err != nil {
		t.Fatal(err)
	}
	run := func(a Assignment) *Stats {
		e.store.EvictAll()
		cfg := Config{Workers: 4, Assignment: a, Seed: 7, SubtreeChunks: 2}
		_, stats, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return stats
	}
	placement := run(AssignPlacement)
	random := run(AssignRandom)
	if placement.ReadVirtual >= random.ReadVirtual {
		t.Errorf("placement read virtual %v not below random %v",
			placement.ReadVirtual, random.ReadVirtual)
	}
}

// TestGroupOracle requires bit-identity of every pair's verdict against
// compare.GroupCompare, for both topologies, with the whole group's
// subtrees pooled across the worker fleet.
func TestGroupOracle(t *testing.T) {
	opts := testOpts()
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	const nFields, elems = 3, 32 << 10
	fields := make([]ckpt.FieldSpec, nFields)
	base := make([][]byte, nFields)
	for fi, n := range []string{"x", "vx", "phi"} {
		fields[fi] = ckpt.FieldSpec{Name: n, DType: errbound.Float32, Count: int64(elems)}
		base[fi] = synth.FieldF32(elems, int64(200+fi))
	}
	var names []string
	for m := 0; m < 3; m++ {
		data := make([][]byte, nFields)
		for fi := range base {
			data[fi] = append([]byte{}, base[fi]...)
			if m > 0 {
				// Each non-baseline member diverges in its own stripe.
				for i := m * 64; i < elems; i += 1024 {
					bumpF32(data[fi], i)
				}
			}
		}
		runID := []string{"base", "runX", "runY"}[m]
		if _, err := ckpt.WriteCheckpoint(store, ckpt.Meta{RunID: runID, Iteration: 5, Rank: 0, Fields: fields}, data); err != nil {
			t.Fatal(err)
		}
		md, _, err := compare.Build(fields, data, opts)
		if err != nil {
			t.Fatal(err)
		}
		name := ckpt.Name(runID, 5, 0)
		if _, err := compare.SaveMetadata(store, name, md); err != nil {
			t.Fatal(err)
		}
		names = append(names, name)
	}
	for _, topo := range []compare.Topology{compare.TopologyStar, compare.TopologyAllPairs} {
		store.EvictAll()
		oracle, err := compare.GroupCompare(context.Background(), store, names[0], names[1:], topo, opts)
		if err != nil {
			t.Fatal(err)
		}
		store.EvictAll()
		cfg := Config{Workers: 4, Stealing: true, SubtreeChunks: 4}
		rep, stats, err := GroupCompare(context.Background(), store, names[0], names[1:], topo, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		if len(rep.Pairs) != len(oracle.Pairs) {
			t.Fatalf("%v: %d pairs, oracle %d", topo, len(rep.Pairs), len(oracle.Pairs))
		}
		for pi := range rep.Pairs {
			gp, op := rep.Pairs[pi], oracle.Pairs[pi]
			if gp.A != op.A || gp.B != op.B || gp.NameA != op.NameA || gp.NameB != op.NameB {
				t.Errorf("%v pair %d: identity mismatch", topo, pi)
			}
			assertSameResult(t, topo.String()+"/pair", gp.Result, op.Result)
		}
		if rep.Reproducible() != oracle.Reproducible() {
			t.Errorf("%v: Reproducible = %v, oracle %v", topo, rep.Reproducible(), oracle.Reproducible())
		}
		if stats.Units == 0 {
			t.Errorf("%v: no units for a divergent group", topo)
		}
	}
}

// TestCompareDeterminism runs the same sharded comparison twice with
// stealing on (schedule nondeterminism at its worst) and requires the
// fully identical Result both times.
func TestCompareDeterminism(t *testing.T) {
	opts := testOpts()
	e := newEnv(t, 64<<10, opts, perturbUniform)
	cfg := Config{Workers: 8, Stealing: true, SubtreeChunks: 2}
	run := func() *compare.Result {
		e.store.EvictAll()
		res, _, err := Compare(context.Background(), e.store, e.nameA, e.nameB, cfg, opts)
		if err != nil {
			t.Fatal(err)
		}
		return res
	}
	r1, r2 := run(), run()
	if !reflect.DeepEqual(r1.Diffs, r2.Diffs) || r1.DiffCount != r2.DiffCount ||
		r1.ChangedChunks != r2.ChangedChunks {
		t.Error("two sharded runs of the same comparison disagree")
	}
}
