package shard

import (
	"fmt"
	"sync/atomic"
	"time"

	"context"

	"repro/internal/errbound"
	"repro/internal/mpi"
	"repro/internal/pfs"
)

// gauge tracks one worker's in-flight stage-2 buffer bytes and their
// high-water mark. It is atomic so the budget invariant can be asserted
// from outside the worker goroutine under the race detector.
type gauge struct {
	inflight atomic.Int64
	peak     atomic.Int64
}

func (g *gauge) acquire(n int64) {
	v := g.inflight.Add(n)
	for {
		p := g.peak.Load()
		if v <= p || g.peak.CompareAndSwap(p, v) {
			return
		}
	}
}

func (g *gauge) release(n int64) { g.inflight.Add(-n) }

// Peak returns the high-water mark of in-flight bytes.
func (g *gauge) Peak() int64 { return g.peak.Load() }

// InFlight returns the current in-flight bytes.
func (g *gauge) InFlight() int64 { return g.inflight.Load() }

// workerState is one worker's run-local state: reused buffers, cached
// hashers, accumulated virtual clock and accounting.
type workerState struct {
	r  *run
	id int

	hashers    map[errbound.DType]*errbound.Hasher
	bufA, bufB []byte

	units       int
	ioVirtual   time.Duration
	compVirtual time.Duration
	bytesRead   int64
	gauge       gauge
	died        bool
}

func (ws *workerState) init(r *run, id int) {
	ws.r = r
	ws.id = id
	ws.hashers = make(map[errbound.DType]*errbound.Hasher)
}

// grow returns buf with at least n capacity, reusing the allocation.
func grow(buf []byte, n int64) []byte {
	if int64(cap(buf)) < n {
		return make([]byte, n)
	}
	return buf[:n]
}

// workerLoop is one worker goroutine: drain the own deque head-first,
// steal batches from the most-loaded peer's tail when idle (if stealing
// is on), execute each unit under the buffer budget, and stream verdicts
// to the coordinator. Unit take-and-execute turns are serialized by the
// run's virtual-time gate, so the schedule is a deterministic function
// of the model costs. The closing done frame is sent on every exit path
// — success, cancellation, error, or chaos death — so the coordinator's
// receiver always terminates.
func (r *run) workerLoop(ctx context.Context, w int, rank *mpi.Rank) (err error) {
	ws := &r.workers[w]
	defer func() {
		died := uint8(0)
		if ws.died {
			died = 1
		}
		done := &DoneMsg{
			Worker:       int64(w),
			Units:        int64(ws.units),
			Died:         died,
			IONanos:      int64(ws.ioVirtual),
			CompNanos:    int64(ws.compVirtual),
			BytesRead:    ws.bytesRead,
			PeakInFlight: ws.gauge.Peak(),
		}
		done.Steals, done.StolenUnits = r.dq.StealStatsOf(w)
		if serr := rank.Send(0, shardTag, EncodeDone(done)); serr != nil && err == nil {
			err = serr
		}
	}()
	defer r.gate.exit(w)
	for {
		if gerr := r.gate.enter(ctx, w); gerr != nil {
			return gerr
		}
		seq, ok := r.dq.Pop(w)
		if !ok && r.cfg.Stealing {
			seq, ok = r.dq.Steal(w)
		}
		if !ok {
			return nil
		}
		if r.cfg.Chaos.Enabled && w == r.cfg.Chaos.Worker && ws.units >= r.cfg.Chaos.AfterUnits {
			// Chaos death: the in-flight unit goes back on the deque —
			// stealable by peers, drained by the coordinator as a last
			// resort — and the worker exits without a verdict for it, so
			// the unit's eventual verdict is recorded exactly once.
			r.dq.Push(w, seq)
			ws.died = true
			return nil
		}
		io0, comp0 := ws.ioVirtual, ws.compVirtual
		v, uerr := r.executeUnit(ctx, ws, r.units[seq])
		r.gate.leave(w, (ws.ioVirtual-io0)+(ws.compVirtual-comp0))
		if uerr != nil {
			return uerr
		}
		if serr := rank.Send(0, shardTag, EncodeVerdict(v)); serr != nil {
			return serr
		}
	}
}

// executeUnit runs stage 2 for one work unit: stream its candidate
// chunks in budget-bounded batches, verify element-wise within ε, and
// summarize into a verdict. All pricing is virtual-clock model time —
// reads at the unit's home-target contention factor, compute on the
// device model — never wall time.
func (r *run) executeUnit(ctx context.Context, ws *workerState, u *UnitMsg) (*VerdictMsg, error) {
	dtype := errbound.DType(u.DType)
	hasher := ws.hashers[dtype]
	if hasher == nil {
		h, err := r.opts.HasherFor(dtype)
		if err != nil {
			return nil, err
		}
		ws.hashers[dtype] = h
		hasher = h
	}
	v := &VerdictMsg{Seq: u.Seq, Pair: u.Pair, Field: u.Field, Worker: int64(ws.id)}
	i := 0
	for i < len(u.Chunks) {
		// Batch greedily under the budget: both sides of every chunk in
		// the batch are in flight at once, so the batch closes when one
		// more chunk would push 2×bytes past Budget. Budget ≥ 2×chunk
		// (validated) guarantees progress.
		j, batchBytes := i, int64(0)
		for j < len(u.Chunks) {
			l := u.Chunks[j].Len
			if j > i && 2*(batchBytes+l) > r.cfg.Budget {
				break
			}
			batchBytes += l
			j++
		}
		if err := r.runBatch(ctx, ws, hasher, u, i, j, batchBytes, v); err != nil {
			return nil, err
		}
		i = j
	}
	ws.units++
	return v, nil
}

// runBatch reads and verifies chunks [i, j) of the unit as one in-flight
// batch. Under Options.Degrade, unreadable or integrity-failing chunks
// are excluded from diffing and counted unverified instead of failing
// the worker; without it any read error (after retries) aborts.
func (r *run) runBatch(ctx context.Context, ws *workerState, hasher *errbound.Hasher, u *UnitMsg, i, j int, batchBytes int64, v *VerdictMsg) error {
	pf := r.files[u.Pair]
	model := r.store.Model()
	sharers := r.store.TargetSharers(int(u.Target))

	need := 2 * batchBytes
	ws.gauge.acquire(need)
	defer ws.gauge.release(need)
	ws.bufA = grow(ws.bufA, batchBytes)
	ws.bufB = grow(ws.bufB, batchBytes)

	var cost pfs.Cost
	var backoff time.Duration
	var comp time.Duration
	off := int64(0)
	for k := i; k < j; k++ {
		cr := &u.Chunks[k]
		a := ws.bufA[off : off+cr.Len]
		b := ws.bufB[off : off+cr.Len]
		off += cr.Len

		okA, errA := r.readChunk(ctx, pf.fA, a, cr.OffA, &cost, &backoff, v)
		if errA != nil {
			return errA
		}
		okB, errB := r.readChunk(ctx, pf.fB, b, cr.OffB, &cost, &backoff, v)
		if errB != nil {
			return errB
		}
		if !okA || !okB {
			v.Unverified++
			continue
		}
		if r.opts.Degrade {
			// Integrity rung: streamed bytes must re-hash to the leaves
			// the unit was cut from; a failing side gets one re-read.
			va := r.integrityCheck(hasher, pf.fA, a, cr.OffA, cr.DigestA, &cost, v)
			vb := r.integrityCheck(hasher, pf.fB, b, cr.OffB, cr.DigestB, &cost, v)
			if va == nil || vb == nil {
				// Untrusted bytes must produce neither a false divergence
				// nor a false match; the chunk still costs compare time.
				v.Unverified++
				comp += r.opts.Device.CompareRateTime(cr.Len)
				continue
			}
			a, b = va, vb
		}
		idx, _, err := hasher.CompareSlices(nil, a, b)
		if err != nil {
			return fmt.Errorf("shard: unit %d chunk %d: %w", u.Seq, cr.Index, err)
		}
		if len(idx) > 0 {
			v.Changed++
			base := cr.Index * u.ChunkElems
			for _, e := range idx {
				v.Diffs = append(v.Diffs, base+e)
			}
		}
	}

	io := model.LatencyTerm(cost) + model.ScatteredBandwidthTerm(cost, sharers) + backoff
	comp += r.opts.Device.KernelLaunch +
		r.opts.Device.TransferTime(2*batchBytes) +
		r.opts.Device.CompareRateTime(batchBytes)
	v.Ops += int64(cost.Ops)
	v.CachedOps += int64(cost.CachedOps)
	v.Bytes += cost.Bytes
	v.CachedBytes += cost.CachedBytes
	v.BytesRead += cost.TotalBytes()
	v.IONanos += int64(io)
	v.CompNanos += int64(comp)
	ws.ioVirtual += io
	ws.compVirtual += comp
	ws.bytesRead += cost.TotalBytes()
	return nil
}

// readChunk reads one chunk side under the options' retry policy. It
// returns ok=false (and no error) when the read ultimately failed but
// degradation allows the comparison to continue without the chunk.
func (r *run) readChunk(ctx context.Context, f *pfs.File, p []byte, fileOff int64, cost *pfs.Cost, backoff *time.Duration, v *VerdictMsg) (bool, error) {
	attempts := 0
	bo, err := r.opts.Retry.Do(ctx, func(attempt int) error {
		if attempt > 0 {
			attempts++
		}
		n, c, rerr := f.ReadAtCtx(ctx, p, fileOff)
		cost.Add(c)
		if rerr == nil && n != len(p) {
			rerr = fmt.Errorf("shard: short read %d of %d at %d", n, len(p), fileOff)
		}
		return rerr
	})
	*backoff += bo
	v.Retries += int64(attempts)
	if err == nil {
		return true, nil
	}
	if cerr := ctx.Err(); cerr != nil {
		return false, cerr
	}
	if r.opts.Degrade {
		return false, nil
	}
	return false, err
}

// integrityCheck verifies one side's bytes against the unit's leaf
// digest, re-reading once on mismatch (an in-flight flip re-reads
// clean; media corruption repeats). It returns the verified bytes or
// nil when the chunk remains unverifiable.
func (r *run) integrityCheck(hasher *errbound.Hasher, f *pfs.File, data []byte, fileOff int64, want [16]byte, cost *pfs.Cost, v *VerdictMsg) []byte {
	if got, err := hasher.HashChunk(data); err == nil && got == want {
		return data
	}
	buf := make([]byte, len(data))
	n, c, err := f.ReadAt(buf, fileOff)
	cost.Add(c)
	v.Rereads++
	if err != nil || n != len(buf) {
		return nil
	}
	if got, herr := hasher.HashChunk(buf); herr == nil && got == want {
		return buf
	}
	return nil
}
