package errbound

import (
	"encoding/binary"
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func f32bytes(vals ...float32) []byte {
	b := make([]byte, 4*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint32(b[i*4:], math.Float32bits(v))
	}
	return b
}

func f64bytes(vals ...float64) []byte {
	b := make([]byte, 8*len(vals))
	for i, v := range vals {
		binary.LittleEndian.PutUint64(b[i*8:], math.Float64bits(v))
	}
	return b
}

func TestQuantizeBasic(t *testing.T) {
	tests := []struct {
		x, eps float64
		want   int64
	}{
		{0, 1, 0},
		{0.5, 1, 0},
		{1.0, 1, 1},
		{-0.5, 1, -1},
		{2.49, 0.5, 4},
		{-2.49, 0.5, -5},
	}
	for _, tt := range tests {
		if got := Quantize(tt.x, tt.eps); got != tt.want {
			t.Errorf("Quantize(%v, %v) = %d, want %d", tt.x, tt.eps, got, tt.want)
		}
	}
}

func TestQuantizeSpecials(t *testing.T) {
	eps := 1e-5
	nan := Quantize(math.NaN(), eps)
	pinf := Quantize(math.Inf(1), eps)
	ninf := Quantize(math.Inf(-1), eps)
	fin := Quantize(1.0, eps)
	cells := map[int64]string{nan: "nan", pinf: "+inf", ninf: "-inf", fin: "finite"}
	if len(cells) != 4 {
		t.Errorf("sentinel cells collide: nan=%d +inf=%d -inf=%d finite=%d", nan, pinf, ninf, fin)
	}
	// Huge finite values clamp but stay distinct from sentinels.
	huge := Quantize(math.MaxFloat64, 1e-300)
	if huge == nan || huge == pinf {
		t.Error("clamped finite cell collides with a sentinel")
	}
}

// The conservative guarantee: differences strictly above eps always change
// the cell.
func TestQuantizeConservativeProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	epsilons := []float64{1e-3, 1e-4, 1e-5, 1e-6, 1e-7}
	for _, eps := range epsilons {
		for i := 0; i < 20000; i++ {
			a := (rng.Float64() - 0.5) * 200 // typical simulation magnitudes
			delta := eps * (1.0001 + rng.Float64()*10)
			if rng.Intn(2) == 0 {
				delta = -delta
			}
			b := a + delta
			if math.Abs(b-a) <= eps {
				continue // float rounding collapsed the delta; not a violation
			}
			if Quantize(a, eps) == Quantize(b, eps) {
				t.Fatalf("eps=%v: a=%v b=%v (|diff|=%v > eps) share cell %d",
					eps, a, b, math.Abs(b-a), Quantize(a, eps))
			}
		}
	}
}

func TestEqual(t *testing.T) {
	tests := []struct {
		a, b, eps float64
		want      bool
	}{
		{1.0, 1.0, 1e-7, true},
		{1.0, 1.0 + 5e-8, 1e-7, true},
		{1.0, 1.0 + 2e-7, 1e-7, false},
		{math.NaN(), math.NaN(), 1e-7, true},
		{math.NaN(), 1.0, 1e-7, false},
		{math.Inf(1), math.Inf(1), 1e-7, true},
		{math.Inf(1), math.Inf(-1), 1e-7, false},
		{math.Inf(1), 1e308, 1e-7, false},
	}
	for _, tt := range tests {
		if got := Equal(tt.a, tt.b, tt.eps); got != tt.want {
			t.Errorf("Equal(%v, %v, %v) = %v, want %v", tt.a, tt.b, tt.eps, got, tt.want)
		}
	}
}

func TestNewHasherValidation(t *testing.T) {
	if _, err := NewHasher(Float32, 0); err == nil {
		t.Error("eps=0 accepted")
	}
	if _, err := NewHasher(Float32, -1); err == nil {
		t.Error("eps<0 accepted")
	}
	if _, err := NewHasher(Float32, math.Inf(1)); err == nil {
		t.Error("eps=+inf accepted")
	}
	if _, err := NewHasher(DType(99), 1e-5); err == nil {
		t.Error("bad dtype accepted")
	}
	h, err := NewHasher(Float64, 1e-6)
	if err != nil {
		t.Fatalf("NewHasher: %v", err)
	}
	if h.Epsilon() != 1e-6 || h.DType() != Float64 {
		t.Error("accessors wrong")
	}
}

func TestHashChunkWithinBoundMatches(t *testing.T) {
	h, err := NewHasher(Float32, 1e-3)
	if err != nil {
		t.Fatal(err)
	}
	// Perturbations far below eps that do not straddle a grid boundary
	// must hash identically.
	a := f32bytes(0.12345, 7.5001, -3.2503, 100.0004)
	b := f32bytes(0.12349, 7.5004, -3.2504, 100.0001)
	da, err := h.HashChunk(a)
	if err != nil {
		t.Fatal(err)
	}
	db, err := h.HashChunk(b)
	if err != nil {
		t.Fatal(err)
	}
	if da != db {
		t.Error("within-bound same-cell values hashed differently")
	}
}

func TestHashChunkBeyondBoundDiffers(t *testing.T) {
	for _, eps := range []float64{1e-3, 1e-5, 1e-7} {
		h, err := NewHasher(Float32, eps)
		if err != nil {
			t.Fatal(err)
		}
		a := f32bytes(0.5, 1.5, 2.5, 3.5)
		b := f32bytes(0.5, 1.5, float32(2.5+3*eps), 3.5)
		da, _ := h.HashChunk(a)
		db, _ := h.HashChunk(b)
		if da == db {
			t.Errorf("eps=%v: out-of-bound difference not detected by hash", eps)
		}
	}
}

func TestHashChunkF64(t *testing.T) {
	h, err := NewHasher(Float64, 1e-9)
	if err != nil {
		t.Fatal(err)
	}
	a := f64bytes(1.0, 2.0, 3.0)
	b := f64bytes(1.0, 2.0+5e-9, 3.0)
	da, _ := h.HashChunk(a)
	db, _ := h.HashChunk(b)
	if da == db {
		t.Error("f64 out-of-bound difference not detected")
	}
}

func TestHashChunkBadLength(t *testing.T) {
	h, _ := NewHasher(Float32, 1e-5)
	if _, err := h.HashChunk(make([]byte, 6)); err == nil {
		t.Error("misaligned chunk accepted")
	}
	if _, err := h.HashChunkScratch(make([]byte, 8), make([]byte, 4)); err == nil {
		t.Error("tiny scratch accepted")
	}
}

func TestHashChunkOrderSensitive(t *testing.T) {
	h, _ := NewHasher(Float32, 1e-5)
	a := f32bytes(1, 2, 3, 4, 5, 6)
	b := f32bytes(6, 5, 4, 3, 2, 1)
	da, _ := h.HashChunk(a)
	db, _ := h.HashChunk(b)
	if da == db {
		t.Error("chunk hash not order sensitive")
	}
}

func TestHashChunkChainPropagates(t *testing.T) {
	// A difference in the FIRST block must change the final digest even for
	// long chunks (chained seeding).
	h, _ := NewHasher(Float32, 1e-5)
	n := 1024
	va := make([]float32, n)
	vb := make([]float32, n)
	for i := range va {
		va[i] = float32(i)
		vb[i] = float32(i)
	}
	vb[0] += 1 // far above eps
	da, _ := h.HashChunk(f32bytes(va...))
	db, _ := h.HashChunk(f32bytes(vb...))
	if da == db {
		t.Error("first-block difference lost through the chain")
	}
}

func TestCompareSlices(t *testing.T) {
	h, _ := NewHasher(Float32, 1e-3)
	a := f32bytes(0, 1, 2, 3, 4)
	b := f32bytes(0, 1.5, 2, 3, 4.01)
	idx, n, err := h.CompareSlices(nil, a, b)
	if err != nil {
		t.Fatal(err)
	}
	if n != 5 {
		t.Errorf("compared %d elements, want 5", n)
	}
	if len(idx) != 2 || idx[0] != 1 || idx[1] != 4 {
		t.Errorf("diff indices = %v, want [1 4]", idx)
	}
}

func TestCompareSlicesErrors(t *testing.T) {
	h, _ := NewHasher(Float32, 1e-3)
	if _, _, err := h.CompareSlices(nil, make([]byte, 8), make([]byte, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, _, err := h.CompareSlices(nil, make([]byte, 6), make([]byte, 6)); err == nil {
		t.Error("misalignment accepted")
	}
}

func TestAllClose(t *testing.T) {
	h, _ := NewHasher(Float32, 1e-3)
	a := f32bytes(1, 2, 3)
	b := f32bytes(1.0005, 2, 3)
	c := f32bytes(1.01, 2, 3)
	if ok, err := h.AllClose(a, b); err != nil || !ok {
		t.Errorf("AllClose(a,b) = %v, %v; want true", ok, err)
	}
	if ok, err := h.AllClose(a, c); err != nil || ok {
		t.Errorf("AllClose(a,c) = %v, %v; want false", ok, err)
	}
	if _, err := h.AllClose(a, make([]byte, 4)); err == nil {
		t.Error("length mismatch accepted")
	}
}

// Property: hash equality is implied by cell-wise equality, and hash
// inequality implies at least one differing cell (i.e. the hash is a pure
// function of the quantized cells).
func TestQuickHashIsFunctionOfCells(t *testing.T) {
	h, err := NewHasher(Float64, 1e-4)
	if err != nil {
		t.Fatal(err)
	}
	f := func(raw []float64) bool {
		if len(raw) == 0 {
			return true
		}
		a := f64bytes(raw...)
		// b: nudge every value within its own cell (tiny epsilon fraction,
		// snapped to stay inside the cell).
		nudged := make([]float64, len(raw))
		for i, v := range raw {
			if math.IsNaN(v) || math.IsInf(v, 0) {
				nudged[i] = v
				continue
			}
			cand := v + 1e-7*1e-4
			if Quantize(cand, 1e-4) == Quantize(v, 1e-4) {
				nudged[i] = cand
			} else {
				nudged[i] = v
			}
		}
		b := f64bytes(nudged...)
		da, err1 := h.HashChunk(a)
		db, err2 := h.HashChunk(b)
		return err1 == nil && err2 == nil && da == db
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 200}); err != nil {
		t.Error(err)
	}
}

func TestTruncationHasher(t *testing.T) {
	th, err := NewTruncationHasher(Float32, 10)
	if err != nil {
		t.Fatal(err)
	}
	a := f32bytes(1.0, 2.0, 3.0)
	b := f32bytes(1.0, 2.0, 3.0)
	da, _ := th.HashChunk(a)
	db, _ := th.HashChunk(b)
	if da != db {
		t.Error("identical data hashed differently")
	}
	c := f32bytes(1.0, 2.0, 4.0)
	dc, _ := th.HashChunk(c)
	if da == dc {
		t.Error("large difference not detected by truncation hash")
	}
	if _, err := NewTruncationHasher(Float32, 0); err == nil {
		t.Error("keepBits=0 accepted")
	}
	if _, err := NewTruncationHasher(DType(0), 10); err == nil {
		t.Error("bad dtype accepted")
	}
	if _, err := th.HashChunk(make([]byte, 5)); err == nil {
		t.Error("misaligned chunk accepted")
	}
}

func BenchmarkHashChunk4KBF32(b *testing.B) {
	h, _ := NewHasher(Float32, 1e-5)
	chunk := make([]byte, 4096)
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < len(chunk)/4; i++ {
		binary.LittleEndian.PutUint32(chunk[i*4:], math.Float32bits(rng.Float32()*100))
	}
	var scratch [16]byte
	b.SetBytes(int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.HashChunkScratch(chunk, scratch[:]); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkCompareSlices4KB(b *testing.B) {
	h, _ := NewHasher(Float32, 1e-5)
	a := make([]byte, 4096)
	c := make([]byte, 4096)
	b.SetBytes(int64(len(a)))
	b.ResetTimer()
	var dst []int64
	for i := 0; i < b.N; i++ {
		dst = dst[:0]
		if _, _, err := h.CompareSlices(dst, a, c); err != nil {
			b.Fatal(err)
		}
	}
}

func TestEqualRel(t *testing.T) {
	tests := []struct {
		a, b, atol, rtol float64
		want             bool
	}{
		{100, 100.5, 0.1, 0.01, true},   // 0.5 <= 0.1 + 1.0
		{100, 100.5, 0.1, 0.001, false}, // 0.5 > 0.1 + 0.1
		{1, 1, 0, 0, true},
		{0, 1e-9, 1e-8, 0, true},
		{math.NaN(), math.NaN(), 1, 1, true},
		{math.NaN(), 0, 1, 1, false},
		{math.Inf(1), math.Inf(1), 0, 0, true},
		{math.Inf(1), 1e308, 1, 1, false},
	}
	for _, tt := range tests {
		if got := EqualRel(tt.a, tt.b, tt.atol, tt.rtol); got != tt.want {
			t.Errorf("EqualRel(%v, %v, %v, %v) = %v, want %v", tt.a, tt.b, tt.atol, tt.rtol, got, tt.want)
		}
	}
}

func TestAllCloseRel(t *testing.T) {
	a := f32bytes(100, 200, 300)
	b := f32bytes(100.5, 201, 301.5)
	// rtol 1% covers all three; rtol 0.1% does not.
	ok, err := AllCloseRel(a, b, Float32, 0, 0.01)
	if err != nil || !ok {
		t.Errorf("rtol=1%%: %v, %v", ok, err)
	}
	ok, err = AllCloseRel(a, b, Float32, 0, 0.001)
	if err != nil || ok {
		t.Errorf("rtol=0.1%%: %v, %v", ok, err)
	}
	if _, err := AllCloseRel(a, b[:8], Float32, 0, 0.01); err == nil {
		t.Error("length mismatch accepted")
	}
	if _, err := AllCloseRel(make([]byte, 6), make([]byte, 6), Float32, 0, 0); err == nil {
		t.Error("misalignment accepted")
	}
	if _, err := AllCloseRel(a, b, DType(0), 0, 0); err == nil {
		t.Error("bad dtype accepted")
	}
	// f64 path.
	x := f64bytes(1000, 2000)
	y := f64bytes(1001, 2002)
	ok, err = AllCloseRel(x, y, Float64, 0, 0.002)
	if err != nil || !ok {
		t.Errorf("f64 rtol: %v, %v", ok, err)
	}
}
