package errbound

import (
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/murmur3"
)

// benchChunk builds a deterministic 64 KiB chunk of the given dtype.
func benchChunk(b *testing.B, dtype DType) []byte {
	b.Helper()
	const n = 64 << 10 / 8
	out := make([]byte, 0, n*dtype.Size())
	for i := 0; i < n; i++ {
		v := math.Sin(float64(i) * 0.001)
		if dtype == Float32 {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(v)))
		} else {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// BenchmarkHashChunk measures the fused quantize+hash leaf kernel, the
// comparator's hot path (bytes/sec is the headline kernel metric).
func BenchmarkHashChunk(b *testing.B) {
	for _, dtype := range []DType{Float32, Float64} {
		b.Run(dtype.String(), func(b *testing.B) {
			chunk := benchChunk(b, dtype)
			h, err := NewHasher(dtype, 1e-6)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := h.HashChunk(chunk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkHashChunkReference measures the seed two-phase implementation
// (quantize into a scratch buffer, SumDigest per block) that the fused
// kernel replaced — kept runnable so benchstat can track the fused/seed
// ratio.
func BenchmarkHashChunkReference(b *testing.B) {
	for _, dtype := range []DType{Float32, Float64} {
		b.Run(dtype.String(), func(b *testing.B) {
			chunk := benchChunk(b, dtype)
			h, err := NewHasher(dtype, 1e-6)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(int64(len(chunk)))
			var scratch [blockElems * 8]byte
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, err := referenceHashChunkScratch(h, chunk, scratch[:]); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkCompareSlices measures the dtype-specialized element-wise
// ε-compare kernel over two equal buffers (stage-2 verification rate).
func BenchmarkCompareSlices(b *testing.B) {
	for _, dtype := range []DType{Float32, Float64} {
		b.Run(dtype.String(), func(b *testing.B) {
			chunk := benchChunk(b, dtype)
			h, err := NewHasher(dtype, 1e-6)
			if err != nil {
				b.Fatal(err)
			}
			b.SetBytes(2 * int64(len(chunk)))
			b.ResetTimer()
			for i := 0; i < b.N; i++ {
				if _, _, err := h.CompareSlices(nil, chunk, chunk); err != nil {
					b.Fatal(err)
				}
			}
		})
	}
}

// BenchmarkAllClose measures the boolean baseline kernel.
func BenchmarkAllClose(b *testing.B) {
	chunk := benchChunk(b, Float32)
	h, err := NewHasher(Float32, 1e-6)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(2 * int64(len(chunk)))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := h.AllClose(chunk, chunk); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkChainBlock isolates the streaming hasher's per-block cost from
// quantization.
func BenchmarkChainBlock(b *testing.B) {
	var c murmur3.Chain
	b.SetBytes(16)
	for i := 0; i < b.N; i++ {
		c.Block(uint64(i), uint64(i)^0x9e3779b97f4a7c15)
	}
}
