package errbound

import (
	"encoding/binary"
	"math"
	"testing"
	"testing/quick"

	"repro/internal/murmur3"
)

// referenceQuantize is the seed Quantize: the NaN/Inf branch cascade
// followed by the ε-grid floor with sentinel clamps. The fused kernels
// must reproduce it bit-for-bit.
func referenceQuantize(x, eps float64) int64 {
	switch {
	case math.IsNaN(x):
		return cellNaN
	case math.IsInf(x, 1):
		return cellPosInf
	case math.IsInf(x, -1):
		return cellNegInf
	}
	q := math.Floor(x / eps)
	if q >= float64(math.MaxInt64-2) {
		return math.MaxInt64 - 2
	}
	if q <= float64(math.MinInt64+2) {
		return math.MinInt64 + 2
	}
	return int64(q)
}

// referenceHashChunkScratch is the seed leaf-hash implementation: per
// element dtype branch, referenceQuantize, serialization into a 16-byte
// scratch buffer, and a full SumDigest seed/finalize round-trip per
// 128-bit block. It is the golden oracle the fused Chain-based kernel is
// equivalence-tested against (and the "before" case of the kernel
// benchmarks).
func referenceHashChunkScratch(h *Hasher, chunk, scratch []byte) (murmur3.Digest, error) {
	esz := h.dtype.Size()
	if len(chunk)%esz != 0 {
		return murmur3.Digest{}, errChunkLen
	}
	n := len(chunk) / esz
	var digest murmur3.Digest
	bi := 0
	for i := 0; i < n; i++ {
		var v float64
		if h.dtype == Float32 {
			v = float64(math.Float32frombits(binary.LittleEndian.Uint32(chunk[i*4:])))
		} else {
			v = math.Float64frombits(binary.LittleEndian.Uint64(chunk[i*8:]))
		}
		cell := referenceQuantize(v, h.eps)
		binary.LittleEndian.PutUint64(scratch[bi*8:], uint64(cell))
		bi++
		if bi == blockElems {
			digest = murmur3.SumDigest(scratch[:blockElems*8], digest)
			bi = 0
		}
	}
	if bi > 0 {
		digest = murmur3.SumDigest(scratch[:bi*8], digest)
	}
	return digest, nil
}

type testingErr string

func (e testingErr) Error() string { return string(e) }

const errChunkLen = testingErr("reference: chunk length not a multiple of element size")

// goldenEpsilons spans the paper's sweep plus denormal-adjacent extremes.
var goldenEpsilons = []float64{1e-3, 1e-5, 1e-7, 1e-12, 0.5, 3.0, 1e300, 1e-300}

// goldenValues mixes finite magnitudes with every special-value class.
var goldenValues = []float64{
	0, math.Copysign(0, -1), 1, -1, 0.3333333333333333, -12345.6789,
	1e-40, -1e-40, 1e40, -1e40, math.MaxFloat64, -math.MaxFloat64,
	math.SmallestNonzeroFloat64, math.NaN(), math.Inf(1), math.Inf(-1),
	math.MaxFloat32 * 2, // overflows float32 to +Inf on conversion
}

// encodeValues serializes values as raw little-endian elements of dtype.
func encodeValues(dtype DType, values []float64) []byte {
	out := make([]byte, 0, len(values)*dtype.Size())
	for _, v := range values {
		if dtype == Float32 {
			out = binary.LittleEndian.AppendUint32(out, math.Float32bits(float32(v)))
		} else {
			out = binary.LittleEndian.AppendUint64(out, math.Float64bits(v))
		}
	}
	return out
}

// TestGoldenQuantizeEquivalence proves the exponent-bit fast path of
// Quantize is bit-identical to the seed branch cascade over specials and
// a dense value sweep.
func TestGoldenQuantizeEquivalence(t *testing.T) {
	for _, eps := range goldenEpsilons {
		for _, v := range goldenValues {
			if got, want := Quantize(v, eps), referenceQuantize(v, eps); got != want {
				t.Fatalf("Quantize(%g, %g) = %d, want %d", v, eps, got, want)
			}
		}
		for i := -2000; i < 2000; i++ {
			v := float64(i) * 0.37 * eps
			if got, want := Quantize(v, eps), referenceQuantize(v, eps); got != want {
				t.Fatalf("Quantize(%g, %g) = %d, want %d", v, eps, got, want)
			}
		}
	}
}

// TestGoldenHashChunkEquivalence proves the fused quantize+hash kernel is
// bit-identical to the seed scratch-buffer SumDigest chaining across
// dtypes, ε values, special values, and every tail length (odd element
// counts exercise the half-block path).
func TestGoldenHashChunkEquivalence(t *testing.T) {
	for _, dtype := range []DType{Float32, Float64} {
		for _, eps := range goldenEpsilons {
			h, err := NewHasher(dtype, eps)
			if err != nil {
				t.Fatal(err)
			}
			// All prefix lengths of the special-heavy vector: covers empty
			// chunks, single elements, odd tails, and full blocks.
			full := encodeValues(dtype, goldenValues)
			for n := 0; n <= len(goldenValues); n++ {
				chunk := full[:n*dtype.Size()]
				var scratch [blockElems * 8]byte
				want, err := referenceHashChunkScratch(h, chunk, scratch[:])
				if err != nil {
					t.Fatal(err)
				}
				got, err := h.HashChunk(chunk)
				if err != nil {
					t.Fatal(err)
				}
				if got != want {
					t.Fatalf("%v eps=%g n=%d: fused digest %x != seed %x", dtype, eps, n, got, want)
				}
				gotScratch, err := h.HashChunkScratch(chunk, scratch[:])
				if err != nil {
					t.Fatal(err)
				}
				if gotScratch != want {
					t.Fatalf("%v eps=%g n=%d: HashChunkScratch diverged from seed", dtype, eps, n)
				}
			}
		}
	}
}

// TestQuickHashChunkEquivalence is the property-style version: random
// buffers (random bit patterns, so NaN payloads and denormals appear)
// must hash identically under both implementations.
func TestQuickHashChunkEquivalence(t *testing.T) {
	for _, dtype := range []DType{Float32, Float64} {
		h, err := NewHasher(dtype, 1e-6)
		if err != nil {
			t.Fatal(err)
		}
		f := func(raw []byte, epsScale uint8) bool {
			eps := goldenEpsilons[int(epsScale)%len(goldenEpsilons)]
			hh, err := NewHasher(dtype, eps)
			if err != nil {
				return false
			}
			chunk := raw[:len(raw)-len(raw)%dtype.Size()]
			var scratch [blockElems * 8]byte
			want, err1 := referenceHashChunkScratch(hh, chunk, scratch[:])
			got, err2 := hh.HashChunk(chunk)
			return err1 == nil && err2 == nil && got == want
		}
		if err := quick.Check(f, nil); err != nil {
			t.Errorf("%v: %v", h.DType(), err)
		}
	}
}

// TestGoldenChainEquivalence proves murmur3.Chain reproduces the
// SumDigest chaining it replaces, block by block, including the half
//-block tail, from both zero and non-zero seeds.
func TestGoldenChainEquivalence(t *testing.T) {
	words := []uint64{0, 1, ^uint64(0), 0x0123456789abcdef, 0xdeadbeef}
	seeds := []murmur3.Digest{{}, murmur3.SumDigest([]byte("seed"), murmur3.Digest{})}
	for _, seed := range seeds {
		for _, tail := range []bool{false, true} {
			want := seed
			chain := murmur3.NewChain(seed)
			var block [16]byte
			for i, w := range words {
				k2 := w ^ 0x5bf03635
				binary.LittleEndian.PutUint64(block[0:8], w)
				binary.LittleEndian.PutUint64(block[8:16], k2)
				want = murmur3.SumDigest(block[:], want)
				chain.Block(w, k2)
				if chain.Sum() != want {
					t.Fatalf("block %d: chain %x != SumDigest %x", i, chain.Sum(), want)
				}
			}
			if tail {
				binary.LittleEndian.PutUint64(block[0:8], 0x7f7f7f7f7f7f7f7f)
				want = murmur3.SumDigest(block[:8], want)
				chain.BlockTail(0x7f7f7f7f7f7f7f7f)
				if chain.Sum() != want {
					t.Fatalf("tail: chain %x != SumDigest %x", chain.Sum(), want)
				}
			}
		}
	}
}

// TestGoldenCompareEquivalence proves the specialized equality kernels
// agree with the generic Equal across special values.
func TestGoldenCompareEquivalence(t *testing.T) {
	const eps = 1e-6
	for _, a := range goldenValues {
		for _, b := range goldenValues {
			want := Equal(a, b, eps)
			if got := equalF64(math.Float64bits(a), math.Float64bits(b), eps); got != want {
				t.Errorf("equalF64(%g, %g) = %v, want %v", a, b, got, want)
			}
			fa, fb := float32(a), float32(b)
			want32 := Equal(float64(fa), float64(fb), eps)
			if got := equalF32(math.Float32bits(fa), math.Float32bits(fb), eps); got != want32 {
				t.Errorf("equalF32(%g, %g) = %v, want %v", fa, fb, got, want32)
			}
		}
	}
}
