// Package errbound implements the error-bounded floating-point
// quantization and chunk hashing scheme of the comparator (paper §2.4).
//
// Floating-point values are conservatively mapped onto a grid of cell width
// ε (the user-defined absolute error bound): cell(x) = floor(x/ε). Two
// values whose absolute difference exceeds ε always land in different cells,
// so hashing the cell indices can never hide an out-of-bound difference
// (no false negatives). Two values within ε of each other usually land in
// the same cell but may straddle a cell boundary, producing the false
// positives that stage 2 of the comparator filters out with an exact
// element-wise check.
//
// Chunks are hashed at 128-bit block granularity: each block is hashed with
// Murmur3F seeded by the digest of the previous block, so the final digest
// reflects every quantized value in the chunk (paper §2.4, "block-based
// hashing").
package errbound

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/murmur3"
)

// DType identifies the element type of checkpoint data.
type DType uint8

// Supported element types.
const (
	Float32 DType = iota + 1
	Float64
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float32:
		return 4
	case Float64:
		return 8
	default:
		return 0
	}
}

// String returns the conventional name of the element type.
func (d DType) String() string {
	switch d {
	case Float32:
		return "f32"
	case Float64:
		return "f64"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// ErrBadEpsilon is returned when an error bound is not a positive, finite
// number.
var ErrBadEpsilon = errors.New("error bound must be positive and finite")

// Special quantization cells for non-finite values. They sit outside the
// range reachable by finite float32/float64 inputs divided by any positive
// ε ≥ 2^-1074 scale combination that matters in practice, and more
// importantly are distinct from each other.
const (
	cellNaN    = int64(math.MaxInt64)
	cellPosInf = int64(math.MaxInt64 - 1)
	cellNegInf = int64(math.MinInt64)
)

// Quantize maps a float64 value to its ε-grid cell index.
//
// Guarantee: for finite a, b with |a-b| > ε (up to floating-point division
// rounding), Quantize(a, ε) != Quantize(b, ε). NaN and infinities map to
// dedicated sentinel cells so that, e.g., NaN in one run vs. a finite value
// in the other is always flagged.
func Quantize(x, eps float64) int64 {
	if isFinite64(math.Float64bits(x)) {
		return quantizeFinite(x, eps)
	}
	return quantizeSpecial(x)
}

// expMask64/expMask32 are the IEEE 754 exponent fields; an all-ones
// exponent means NaN or ±Inf, so a single mask test classifies a value as
// finite — the branch the hot loops hoist in place of the per-element
// IsNaN/IsInf cascade.
const (
	expMask64 = uint64(0x7ff0000000000000)
	expMask32 = uint32(0x7f800000)
)

func isFinite64(bits uint64) bool { return bits&expMask64 != expMask64 }
func isFinite32(bits uint32) bool { return bits&expMask32 != expMask32 }

// quantizeFinite is the finite-value fast path: x must not be NaN or ±Inf.
// The division (not a multiplication by 1/ε, which rounds differently)
// and the Floor keep the cell function bit-identical across call sites.
func quantizeFinite(x, eps float64) int64 {
	q := math.Floor(x / eps)
	// Clamp the finite range away from the sentinels.
	if q >= float64(math.MaxInt64-2) {
		return math.MaxInt64 - 2
	}
	if q <= float64(math.MinInt64+2) {
		return math.MinInt64 + 2
	}
	return int64(q)
}

// quantizeSpecial is the sentinel path for non-finite values.
func quantizeSpecial(x float64) int64 {
	switch {
	case math.IsNaN(x):
		return cellNaN
	case math.IsInf(x, 1):
		return cellPosInf
	default:
		return cellNegInf
	}
}

// Equal reports whether two values are equal within the absolute error
// bound ε, i.e. NOT different in the paper's sense (|a-b| > ε means
// different). NaN equals NaN here: two runs both producing NaN at the same
// index are not a divergence the bound can rank, and the hash treats them
// identically.
func Equal(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps
}

// Hasher hashes chunks of raw checkpoint bytes under an error bound.
// A Hasher is safe for concurrent use by multiple goroutines as long as
// each goroutine passes its own scratch buffer; the convenience HashChunk
// method allocates per call.
type Hasher struct {
	eps   float64
	dtype DType
}

// NewHasher returns a Hasher for the given element type and absolute error
// bound.
func NewHasher(dtype DType, eps float64) (*Hasher, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("errbound: eps %v: %w", eps, ErrBadEpsilon)
	}
	if dtype.Size() == 0 {
		return nil, fmt.Errorf("errbound: unsupported dtype %v", dtype)
	}
	return &Hasher{eps: eps, dtype: dtype}, nil
}

// Epsilon returns the hasher's absolute error bound.
func (h *Hasher) Epsilon() float64 { return h.eps }

// DType returns the hasher's element type.
func (h *Hasher) DType() DType { return h.dtype }

// blockElems is the number of quantized elements per hashed block. Cells
// are 8 bytes, so two cells fill one 128-bit Murmur3F block, matching the
// paper's 128-bit block granularity.
const blockElems = 2

// HashChunk hashes one chunk of raw bytes. The chunk length must be a
// multiple of the element size (the final chunk of a checkpoint field is
// padded by the caller's chunking layer). It is allocation-free: quantized
// cells feed a streaming murmur3.Chain directly as uint64 pairs, with no
// scratch serialization. The digest is bit-identical to the original
// scratch-buffer SumDigest chaining (golden-vector tested).
func (h *Hasher) HashChunk(chunk []byte) (murmur3.Digest, error) {
	esz := h.dtype.Size()
	if len(chunk)%esz != 0 {
		return murmur3.Digest{}, fmt.Errorf("errbound: chunk length %d not a multiple of element size %d", len(chunk), esz)
	}
	var c murmur3.Chain
	if h.dtype == Float32 {
		hashChunkF32(&c, chunk, h.eps)
	} else {
		hashChunkF64(&c, chunk, h.eps)
	}
	return c.Sum(), nil
}

// HashChunkScratch is HashChunk with a caller-provided scratch buffer of
// at least 16 bytes. The fused kernel no longer writes to the scratch, but
// the capacity contract is kept so hot-path callers written against the
// old two-phase implementation keep their buffers sized for a potential
// fallback.
func (h *Hasher) HashChunkScratch(chunk, scratch []byte) (murmur3.Digest, error) {
	if len(scratch) < blockElems*8 {
		return murmur3.Digest{}, fmt.Errorf("errbound: scratch buffer too small: %d < %d", len(scratch), blockElems*8)
	}
	return h.HashChunk(chunk)
}

// hashChunkF32 is the float32 quantize+hash loop: two elements per
// 128-bit block, finite fast path hoisted, no scratch buffer. Three
// structural choices keep the loop near the chain's ALU floor:
//
//   - advancing the slice instead of indexing drops per-load bounds checks;
//   - the finite quantize path is written out in the main loop body because
//     cellF32 is over the compiler's inline budget, and a call per element
//     costs more than the quantization itself;
//   - the loop is unrolled two blocks deep with all four quantizations
//     issued before the two Block calls, so the divider works under the
//     ~30-cycle serial finalize chains instead of after them (measured
//     ~35% over the one-block form).
func hashChunkF32(c *murmur3.Chain, chunk []byte, eps float64) {
	for len(chunk) >= 16 {
		b1 := binary.LittleEndian.Uint32(chunk)
		b2 := binary.LittleEndian.Uint32(chunk[4:])
		b3 := binary.LittleEndian.Uint32(chunk[8:])
		b4 := binary.LittleEndian.Uint32(chunk[12:])
		var k1, k2, k3, k4 uint64
		if isFinite32(b1) {
			k1 = uint64(quantizeFinite(float64(math.Float32frombits(b1)), eps))
		} else {
			k1 = uint64(quantizeSpecial(float64(math.Float32frombits(b1))))
		}
		if isFinite32(b2) {
			k2 = uint64(quantizeFinite(float64(math.Float32frombits(b2)), eps))
		} else {
			k2 = uint64(quantizeSpecial(float64(math.Float32frombits(b2))))
		}
		if isFinite32(b3) {
			k3 = uint64(quantizeFinite(float64(math.Float32frombits(b3)), eps))
		} else {
			k3 = uint64(quantizeSpecial(float64(math.Float32frombits(b3))))
		}
		if isFinite32(b4) {
			k4 = uint64(quantizeFinite(float64(math.Float32frombits(b4)), eps))
		} else {
			k4 = uint64(quantizeSpecial(float64(math.Float32frombits(b4))))
		}
		c.Block(k1, k2)
		c.Block(k3, k4)
		chunk = chunk[16:]
	}
	if len(chunk) >= 8 {
		c.Block(cellF32(binary.LittleEndian.Uint32(chunk), eps),
			cellF32(binary.LittleEndian.Uint32(chunk[4:]), eps))
		chunk = chunk[8:]
	}
	if len(chunk) >= 4 {
		c.BlockTail(cellF32(binary.LittleEndian.Uint32(chunk), eps))
	}
}

// hashChunkF64 is the float64 quantize+hash loop, structured exactly like
// hashChunkF32 (bounds-check-free loads, inlined finite path, two-block
// unroll with quantization hoisted ahead of the hash chains).
func hashChunkF64(c *murmur3.Chain, chunk []byte, eps float64) {
	for len(chunk) >= 32 {
		b1 := binary.LittleEndian.Uint64(chunk)
		b2 := binary.LittleEndian.Uint64(chunk[8:])
		b3 := binary.LittleEndian.Uint64(chunk[16:])
		b4 := binary.LittleEndian.Uint64(chunk[24:])
		var k1, k2, k3, k4 uint64
		if isFinite64(b1) {
			k1 = uint64(quantizeFinite(math.Float64frombits(b1), eps))
		} else {
			k1 = uint64(quantizeSpecial(math.Float64frombits(b1)))
		}
		if isFinite64(b2) {
			k2 = uint64(quantizeFinite(math.Float64frombits(b2), eps))
		} else {
			k2 = uint64(quantizeSpecial(math.Float64frombits(b2)))
		}
		if isFinite64(b3) {
			k3 = uint64(quantizeFinite(math.Float64frombits(b3), eps))
		} else {
			k3 = uint64(quantizeSpecial(math.Float64frombits(b3)))
		}
		if isFinite64(b4) {
			k4 = uint64(quantizeFinite(math.Float64frombits(b4), eps))
		} else {
			k4 = uint64(quantizeSpecial(math.Float64frombits(b4)))
		}
		c.Block(k1, k2)
		c.Block(k3, k4)
		chunk = chunk[32:]
	}
	if len(chunk) >= 16 {
		c.Block(cellF64(binary.LittleEndian.Uint64(chunk), eps),
			cellF64(binary.LittleEndian.Uint64(chunk[8:]), eps))
		chunk = chunk[16:]
	}
	if len(chunk) >= 8 {
		c.BlockTail(cellF64(binary.LittleEndian.Uint64(chunk), eps))
	}
}

// cellF32 quantizes one raw little-endian float32 to its cell, as the
// uint64 wire representation the chained blocks hash.
func cellF32(bits uint32, eps float64) uint64 {
	if isFinite32(bits) {
		return uint64(quantizeFinite(float64(math.Float32frombits(bits)), eps))
	}
	return uint64(quantizeSpecial(float64(math.Float32frombits(bits))))
}

// cellF64 quantizes one raw little-endian float64 to its cell.
func cellF64(bits uint64, eps float64) uint64 {
	if isFinite64(bits) {
		return uint64(quantizeFinite(math.Float64frombits(bits), eps))
	}
	return uint64(quantizeSpecial(math.Float64frombits(bits)))
}

// CompareSlices compares two equal-length raw byte slices element-wise and
// appends to dst the indices (element offsets relative to the start of the
// slices) whose absolute difference exceeds ε. It returns the extended
// slice and the number of elements compared.
func (h *Hasher) CompareSlices(dst []int64, a, b []byte) ([]int64, int, error) {
	esz := h.dtype.Size()
	if len(a) != len(b) {
		return dst, 0, fmt.Errorf("errbound: slice length mismatch %d != %d", len(a), len(b))
	}
	if len(a)%esz != 0 {
		return dst, 0, fmt.Errorf("errbound: slice length %d not a multiple of element size %d", len(a), esz)
	}
	n := len(a) / esz
	if h.dtype == Float32 {
		for i := 0; i < n; i++ {
			if !equalF32(binary.LittleEndian.Uint32(a[i*4:]), binary.LittleEndian.Uint32(b[i*4:]), h.eps) {
				dst = append(dst, int64(i))
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if !equalF64(binary.LittleEndian.Uint64(a[i*8:]), binary.LittleEndian.Uint64(b[i*8:]), h.eps) {
				dst = append(dst, int64(i))
			}
		}
	}
	return dst, n, nil
}

// equalF64 is Equal on raw little-endian float64 bits with the finite fast
// path hoisted: when both values are finite the NaN/Inf cascade reduces to
// a single |a-b| <= ε test.
func equalF64(ba, bb uint64, eps float64) bool {
	if isFinite64(ba) && isFinite64(bb) {
		return math.Abs(math.Float64frombits(ba)-math.Float64frombits(bb)) <= eps
	}
	return Equal(math.Float64frombits(ba), math.Float64frombits(bb), eps)
}

// equalF32 is equalF64 for raw float32 bits (compared in float64, exactly
// like the generic path).
func equalF32(ba, bb uint32, eps float64) bool {
	if isFinite32(ba) && isFinite32(bb) {
		return math.Abs(float64(math.Float32frombits(ba))-float64(math.Float32frombits(bb))) <= eps
	}
	return Equal(float64(math.Float32frombits(ba)), float64(math.Float32frombits(bb)), eps)
}

// AllClose reports whether every pair of elements in the two raw byte
// slices is within ε, the numpy.allclose(atol=ε, rtol=0) baseline of the
// paper. It stops at the first out-of-bound pair.
func (h *Hasher) AllClose(a, b []byte) (bool, error) {
	esz := h.dtype.Size()
	if len(a) != len(b) {
		return false, fmt.Errorf("errbound: slice length mismatch %d != %d", len(a), len(b))
	}
	if len(a)%esz != 0 {
		return false, fmt.Errorf("errbound: slice length %d not a multiple of element size %d", len(a), esz)
	}
	n := len(a) / esz
	if h.dtype == Float32 {
		for i := 0; i < n; i++ {
			if !equalF32(binary.LittleEndian.Uint32(a[i*4:]), binary.LittleEndian.Uint32(b[i*4:]), h.eps) {
				return false, nil
			}
		}
	} else {
		for i := 0; i < n; i++ {
			if !equalF64(binary.LittleEndian.Uint64(a[i*8:]), binary.LittleEndian.Uint64(b[i*8:]), h.eps) {
				return false, nil
			}
		}
	}
	return true, nil
}

// EqualRel reports whether a and b are close under numpy.allclose
// semantics: |a-b| <= atol + rtol·|b|. The paper evaluates with rtol=0
// (absolute bounds only); this generalization exists for baseline parity.
func EqualRel(a, b, atol, rtol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= atol+rtol*math.Abs(b)
}

// AllCloseRel is the full numpy.allclose baseline over raw buffers: true
// when every element pair satisfies |a-b| <= atol + rtol·|b|.
func AllCloseRel(a, b []byte, dtype DType, atol, rtol float64) (bool, error) {
	esz := dtype.Size()
	if esz == 0 {
		return false, fmt.Errorf("errbound: unsupported dtype %v", dtype)
	}
	if len(a) != len(b) {
		return false, fmt.Errorf("errbound: slice length mismatch %d != %d", len(a), len(b))
	}
	if len(a)%esz != 0 {
		return false, fmt.Errorf("errbound: slice length %d not a multiple of element size %d", len(a), esz)
	}
	n := len(a) / esz
	for i := 0; i < n; i++ {
		var va, vb float64
		if dtype == Float32 {
			va = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:])))
			vb = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		} else {
			va = math.Float64frombits(binary.LittleEndian.Uint64(a[i*8:]))
			vb = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		if !EqualRel(va, vb, atol, rtol) {
			return false, nil
		}
	}
	return true, nil
}

// TruncationHasher is the ablation alternative to the ε-grid scheme: it
// rounds by zeroing low mantissa bits (bit truncation) instead of grid
// quantization. Truncation is cheaper but NOT conservative — values that
// differ by more than ε can share a truncated representation near large
// magnitudes, and values within ε can differ — so it is used only by the
// ablation benchmark in DESIGN.md §6.
type TruncationHasher struct {
	dtype    DType
	keepBits uint
}

// NewTruncationHasher returns a TruncationHasher that keeps the given
// number of mantissa bits (1..52 for f64, 1..23 for f32 effective).
func NewTruncationHasher(dtype DType, keepBits uint) (*TruncationHasher, error) {
	if dtype.Size() == 0 {
		return nil, fmt.Errorf("errbound: unsupported dtype %v", dtype)
	}
	if keepBits < 1 || keepBits > 52 {
		return nil, fmt.Errorf("errbound: keepBits %d out of range [1,52]", keepBits)
	}
	return &TruncationHasher{dtype: dtype, keepBits: keepBits}, nil
}

// HashChunk hashes one chunk of raw bytes under bit truncation.
func (t *TruncationHasher) HashChunk(chunk []byte) (murmur3.Digest, error) {
	esz := t.dtype.Size()
	if len(chunk)%esz != 0 {
		return murmur3.Digest{}, fmt.Errorf("errbound: chunk length %d not a multiple of element size %d", len(chunk), esz)
	}
	n := len(chunk) / esz
	trunc := func(i int) uint64 {
		if t.dtype == Float32 {
			b32 := binary.LittleEndian.Uint32(chunk[i*4:])
			keep := t.keepBits
			if keep > 23 {
				keep = 23
			}
			mask := uint32(math.MaxUint32) << (23 - keep)
			return uint64(b32 & mask)
		}
		b64 := binary.LittleEndian.Uint64(chunk[i*8:])
		mask := uint64(math.MaxUint64) << (52 - t.keepBits)
		return b64 & mask
	}
	var c murmur3.Chain
	i := 0
	for ; i+1 < n; i += 2 {
		c.Block(trunc(i), trunc(i+1))
	}
	if i < n {
		c.BlockTail(trunc(i))
	}
	return c.Sum(), nil
}
