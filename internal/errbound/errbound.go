// Package errbound implements the error-bounded floating-point
// quantization and chunk hashing scheme of the comparator (paper §2.4).
//
// Floating-point values are conservatively mapped onto a grid of cell width
// ε (the user-defined absolute error bound): cell(x) = floor(x/ε). Two
// values whose absolute difference exceeds ε always land in different cells,
// so hashing the cell indices can never hide an out-of-bound difference
// (no false negatives). Two values within ε of each other usually land in
// the same cell but may straddle a cell boundary, producing the false
// positives that stage 2 of the comparator filters out with an exact
// element-wise check.
//
// Chunks are hashed at 128-bit block granularity: each block is hashed with
// Murmur3F seeded by the digest of the previous block, so the final digest
// reflects every quantized value in the chunk (paper §2.4, "block-based
// hashing").
package errbound

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"repro/internal/murmur3"
)

// DType identifies the element type of checkpoint data.
type DType uint8

// Supported element types.
const (
	Float32 DType = iota + 1
	Float64
)

// Size returns the element size in bytes.
func (d DType) Size() int {
	switch d {
	case Float32:
		return 4
	case Float64:
		return 8
	default:
		return 0
	}
}

// String returns the conventional name of the element type.
func (d DType) String() string {
	switch d {
	case Float32:
		return "f32"
	case Float64:
		return "f64"
	default:
		return fmt.Sprintf("DType(%d)", uint8(d))
	}
}

// ErrBadEpsilon is returned when an error bound is not a positive, finite
// number.
var ErrBadEpsilon = errors.New("error bound must be positive and finite")

// Special quantization cells for non-finite values. They sit outside the
// range reachable by finite float32/float64 inputs divided by any positive
// ε ≥ 2^-1074 scale combination that matters in practice, and more
// importantly are distinct from each other.
const (
	cellNaN    = int64(math.MaxInt64)
	cellPosInf = int64(math.MaxInt64 - 1)
	cellNegInf = int64(math.MinInt64)
)

// Quantize maps a float64 value to its ε-grid cell index.
//
// Guarantee: for finite a, b with |a-b| > ε (up to floating-point division
// rounding), Quantize(a, ε) != Quantize(b, ε). NaN and infinities map to
// dedicated sentinel cells so that, e.g., NaN in one run vs. a finite value
// in the other is always flagged.
func Quantize(x, eps float64) int64 {
	switch {
	case math.IsNaN(x):
		return cellNaN
	case math.IsInf(x, 1):
		return cellPosInf
	case math.IsInf(x, -1):
		return cellNegInf
	}
	q := math.Floor(x / eps)
	// Clamp the finite range away from the sentinels.
	if q >= float64(math.MaxInt64-2) {
		return math.MaxInt64 - 2
	}
	if q <= float64(math.MinInt64+2) {
		return math.MinInt64 + 2
	}
	return int64(q)
}

// Equal reports whether two values are equal within the absolute error
// bound ε, i.e. NOT different in the paper's sense (|a-b| > ε means
// different). NaN equals NaN here: two runs both producing NaN at the same
// index are not a divergence the bound can rank, and the hash treats them
// identically.
func Equal(a, b, eps float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= eps
}

// Hasher hashes chunks of raw checkpoint bytes under an error bound.
// A Hasher is safe for concurrent use by multiple goroutines as long as
// each goroutine passes its own scratch buffer; the convenience HashChunk
// method allocates per call.
type Hasher struct {
	eps   float64
	dtype DType
}

// NewHasher returns a Hasher for the given element type and absolute error
// bound.
func NewHasher(dtype DType, eps float64) (*Hasher, error) {
	if !(eps > 0) || math.IsInf(eps, 0) {
		return nil, fmt.Errorf("errbound: eps %v: %w", eps, ErrBadEpsilon)
	}
	if dtype.Size() == 0 {
		return nil, fmt.Errorf("errbound: unsupported dtype %v", dtype)
	}
	return &Hasher{eps: eps, dtype: dtype}, nil
}

// Epsilon returns the hasher's absolute error bound.
func (h *Hasher) Epsilon() float64 { return h.eps }

// DType returns the hasher's element type.
func (h *Hasher) DType() DType { return h.dtype }

// blockElems is the number of quantized elements per hashed block. Cells
// are 8 bytes, so two cells fill one 128-bit Murmur3F block, matching the
// paper's 128-bit block granularity.
const blockElems = 2

// HashChunk hashes one chunk of raw bytes. The chunk length must be a
// multiple of the element size (the final chunk of a checkpoint field is
// padded by the caller's chunking layer). It allocates a small scratch
// buffer; use HashChunkScratch in hot paths.
func (h *Hasher) HashChunk(chunk []byte) (murmur3.Digest, error) {
	var scratch [blockElems * 8]byte
	return h.HashChunkScratch(chunk, scratch[:])
}

// HashChunkScratch is HashChunk with a caller-provided scratch buffer of at
// least 16 bytes, for allocation-free hashing.
func (h *Hasher) HashChunkScratch(chunk, scratch []byte) (murmur3.Digest, error) {
	esz := h.dtype.Size()
	if len(chunk)%esz != 0 {
		return murmur3.Digest{}, fmt.Errorf("errbound: chunk length %d not a multiple of element size %d", len(chunk), esz)
	}
	if len(scratch) < blockElems*8 {
		return murmur3.Digest{}, fmt.Errorf("errbound: scratch buffer too small: %d < %d", len(scratch), blockElems*8)
	}
	n := len(chunk) / esz
	var digest murmur3.Digest
	// Serialize quantized cells into 16-byte blocks and chain-hash them.
	bi := 0
	for i := 0; i < n; i++ {
		var v float64
		if h.dtype == Float32 {
			v = float64(math.Float32frombits(binary.LittleEndian.Uint32(chunk[i*4:])))
		} else {
			v = math.Float64frombits(binary.LittleEndian.Uint64(chunk[i*8:]))
		}
		cell := Quantize(v, h.eps)
		binary.LittleEndian.PutUint64(scratch[bi*8:], uint64(cell))
		bi++
		if bi == blockElems {
			digest = murmur3.SumDigest(scratch[:blockElems*8], digest)
			bi = 0
		}
	}
	if bi > 0 {
		digest = murmur3.SumDigest(scratch[:bi*8], digest)
	}
	return digest, nil
}

// CompareSlices compares two equal-length raw byte slices element-wise and
// appends to dst the indices (element offsets relative to the start of the
// slices) whose absolute difference exceeds ε. It returns the extended
// slice and the number of elements compared.
func (h *Hasher) CompareSlices(dst []int64, a, b []byte) ([]int64, int, error) {
	esz := h.dtype.Size()
	if len(a) != len(b) {
		return dst, 0, fmt.Errorf("errbound: slice length mismatch %d != %d", len(a), len(b))
	}
	if len(a)%esz != 0 {
		return dst, 0, fmt.Errorf("errbound: slice length %d not a multiple of element size %d", len(a), esz)
	}
	n := len(a) / esz
	for i := 0; i < n; i++ {
		var va, vb float64
		if h.dtype == Float32 {
			va = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:])))
			vb = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		} else {
			va = math.Float64frombits(binary.LittleEndian.Uint64(a[i*8:]))
			vb = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		if !Equal(va, vb, h.eps) {
			dst = append(dst, int64(i))
		}
	}
	return dst, n, nil
}

// AllClose reports whether every pair of elements in the two raw byte
// slices is within ε, the numpy.allclose(atol=ε, rtol=0) baseline of the
// paper. It stops at the first out-of-bound pair.
func (h *Hasher) AllClose(a, b []byte) (bool, error) {
	esz := h.dtype.Size()
	if len(a) != len(b) {
		return false, fmt.Errorf("errbound: slice length mismatch %d != %d", len(a), len(b))
	}
	if len(a)%esz != 0 {
		return false, fmt.Errorf("errbound: slice length %d not a multiple of element size %d", len(a), esz)
	}
	n := len(a) / esz
	for i := 0; i < n; i++ {
		var va, vb float64
		if h.dtype == Float32 {
			va = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:])))
			vb = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		} else {
			va = math.Float64frombits(binary.LittleEndian.Uint64(a[i*8:]))
			vb = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		if !Equal(va, vb, h.eps) {
			return false, nil
		}
	}
	return true, nil
}

// EqualRel reports whether a and b are close under numpy.allclose
// semantics: |a-b| <= atol + rtol·|b|. The paper evaluates with rtol=0
// (absolute bounds only); this generalization exists for baseline parity.
func EqualRel(a, b, atol, rtol float64) bool {
	if math.IsNaN(a) || math.IsNaN(b) {
		return math.IsNaN(a) && math.IsNaN(b)
	}
	if math.IsInf(a, 0) || math.IsInf(b, 0) {
		return a == b
	}
	return math.Abs(a-b) <= atol+rtol*math.Abs(b)
}

// AllCloseRel is the full numpy.allclose baseline over raw buffers: true
// when every element pair satisfies |a-b| <= atol + rtol·|b|.
func AllCloseRel(a, b []byte, dtype DType, atol, rtol float64) (bool, error) {
	esz := dtype.Size()
	if esz == 0 {
		return false, fmt.Errorf("errbound: unsupported dtype %v", dtype)
	}
	if len(a) != len(b) {
		return false, fmt.Errorf("errbound: slice length mismatch %d != %d", len(a), len(b))
	}
	if len(a)%esz != 0 {
		return false, fmt.Errorf("errbound: slice length %d not a multiple of element size %d", len(a), esz)
	}
	n := len(a) / esz
	for i := 0; i < n; i++ {
		var va, vb float64
		if dtype == Float32 {
			va = float64(math.Float32frombits(binary.LittleEndian.Uint32(a[i*4:])))
			vb = float64(math.Float32frombits(binary.LittleEndian.Uint32(b[i*4:])))
		} else {
			va = math.Float64frombits(binary.LittleEndian.Uint64(a[i*8:]))
			vb = math.Float64frombits(binary.LittleEndian.Uint64(b[i*8:]))
		}
		if !EqualRel(va, vb, atol, rtol) {
			return false, nil
		}
	}
	return true, nil
}

// TruncationHasher is the ablation alternative to the ε-grid scheme: it
// rounds by zeroing low mantissa bits (bit truncation) instead of grid
// quantization. Truncation is cheaper but NOT conservative — values that
// differ by more than ε can share a truncated representation near large
// magnitudes, and values within ε can differ — so it is used only by the
// ablation benchmark in DESIGN.md §6.
type TruncationHasher struct {
	dtype    DType
	keepBits uint
}

// NewTruncationHasher returns a TruncationHasher that keeps the given
// number of mantissa bits (1..52 for f64, 1..23 for f32 effective).
func NewTruncationHasher(dtype DType, keepBits uint) (*TruncationHasher, error) {
	if dtype.Size() == 0 {
		return nil, fmt.Errorf("errbound: unsupported dtype %v", dtype)
	}
	if keepBits < 1 || keepBits > 52 {
		return nil, fmt.Errorf("errbound: keepBits %d out of range [1,52]", keepBits)
	}
	return &TruncationHasher{dtype: dtype, keepBits: keepBits}, nil
}

// HashChunk hashes one chunk of raw bytes under bit truncation.
func (t *TruncationHasher) HashChunk(chunk []byte) (murmur3.Digest, error) {
	esz := t.dtype.Size()
	if len(chunk)%esz != 0 {
		return murmur3.Digest{}, fmt.Errorf("errbound: chunk length %d not a multiple of element size %d", len(chunk), esz)
	}
	n := len(chunk) / esz
	var digest murmur3.Digest
	var scratch [blockElems * 8]byte
	bi := 0
	for i := 0; i < n; i++ {
		var bits uint64
		if t.dtype == Float32 {
			b32 := binary.LittleEndian.Uint32(chunk[i*4:])
			keep := t.keepBits
			if keep > 23 {
				keep = 23
			}
			mask := uint32(math.MaxUint32) << (23 - keep)
			bits = uint64(b32 & mask)
		} else {
			b64 := binary.LittleEndian.Uint64(chunk[i*8:])
			mask := uint64(math.MaxUint64) << (52 - t.keepBits)
			bits = b64 & mask
		}
		binary.LittleEndian.PutUint64(scratch[bi*8:], bits)
		bi++
		if bi == blockElems {
			digest = murmur3.SumDigest(scratch[:], digest)
			bi = 0
		}
	}
	if bi > 0 {
		digest = murmur3.SumDigest(scratch[:bi*8], digest)
	}
	return digest, nil
}
