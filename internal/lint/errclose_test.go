package lint

import "testing"

func TestErrClose(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "bare close in ckpt",
			pkg:  "internal/ckpt",
			src: `package ckpt
import "os"
func f(w *os.File) {
	w.Close()
}
`,
			want: []string{"4:errclose"},
		},
		{
			name: "deferred close flagged",
			pkg:  "internal/pfs",
			src: `package pfs
import "os"
func f(w *os.File) {
	defer w.Close()
}
`,
			want: []string{"4:errclose"},
		},
		{
			name: "go statement close flagged",
			pkg:  "internal/pfs",
			src: `package pfs
import "os"
func f(w *os.File) {
	go w.Close()
}
`,
			want: []string{"4:errclose"},
		},
		{
			name: "dropped write flagged",
			pkg:  "internal/ckpt",
			src: `package ckpt
import "os"
func f(w *os.File, b []byte) {
	w.Write(b)
}
`,
			want: []string{"4:errclose"},
		},
		{
			name: "explicit discard allowed",
			pkg:  "internal/ckpt",
			src: `package ckpt
import "os"
func f(w *os.File) {
	_ = w.Close()
}
`,
			want: nil,
		},
		{
			name: "handled error clean",
			pkg:  "internal/ckpt",
			src: `package ckpt
import "os"
func f(w *os.File) error {
	if err := w.Close(); err != nil {
		return err
	}
	return nil
}
`,
			want: nil,
		},
		{
			name: "other packages out of scope",
			pkg:  "internal/hacc",
			src: `package hacc
import "os"
func f(w *os.File) {
	w.Close()
}
`,
			want: nil,
		},
		{
			name: "suppressed",
			pkg:  "internal/pfs",
			src: `package pfs
import "os"
func f(w *os.File) {
	//lint:ignore errclose read path, data already validated
	defer w.Close()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, ErrClose, tc.pkg, tc.src), tc.want...)
		})
	}
}
