package lint

import (
	"fmt"
	"path/filepath"
	"testing"
)

// TestRunAuditStaleIgnores: the audit reports directives that suppressed
// nothing, keeps live ones (including one only live at tier 2), and
// tier-1 audits would wrongly call tier-2 directives stale — which is
// why -audit-ignores always runs the full suite.
func TestRunAuditStaleIgnores(t *testing.T) {
	files := map[string]string{
		"internal/app/app.go": `package app

type sample struct{ v float64 }

func cmp(a, b float64) bool {
	//lint:ignore floatcmp exact by design
	return a == b
}

func clean(a, b int) bool {
	//lint:ignore floatcmp nothing here compares floats
	return a == b
}

func feq(a, b sample) bool {
	//lint:ignore epsflow exact comparison on quantized grid values
	return a.v == b.v
}
`,
	}
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	for rel, content := range files {
		mustWrite(t, root, rel, content)
	}

	diags, stale, err := RunAudit(Config{Root: root, Tier: 2}, "./...")
	if err != nil {
		t.Fatalf("RunAudit: %v", err)
	}
	if len(diags) != 0 {
		t.Fatalf("all findings are suppressed, got %v", diags)
	}
	var got []string
	for _, s := range stale {
		got = append(got, fmt.Sprintf("%s:%d:%v", filepath.Base(s.File), s.Line, s.Rules))
	}
	if len(got) != 1 || got[0] != "app.go:11:[floatcmp]" {
		t.Fatalf("stale: got %v, want only the line-11 directive", got)
	}
	if stale[0].Reason != "nothing here compares floats" {
		t.Fatalf("reason: %q", stale[0].Reason)
	}

	// The same audit restricted to tier 1 cannot see detflow fire, so it
	// wrongly reports the tier-2 directive as stale too.
	_, tier1Stale, err := RunAudit(Config{Root: root, Tier: 1, Analyzers: tier1Only()}, "./...")
	if err != nil {
		t.Fatalf("tier-1 RunAudit: %v", err)
	}
	if len(tier1Stale) != 2 {
		t.Fatalf("tier-1 audit should see 2 stale directives, got %v", tier1Stale)
	}
}

// tier1Only returns the syntactic subset of the suite.
func tier1Only() []*Analyzer {
	t1, _ := splitByTier(All())
	return t1
}
