package lint

import (
	"go/ast"
	"strings"
)

// Ctxflow enforces the codebase's cancellation discipline, the contract
// the engine executor relies on: a context reaches every step by explicit
// parameter passing, so canceling the caller's context is guaranteed to
// reach the ring submission loop, the streaming pipeline, and the diff
// kernels. Three shapes break that chain and are flagged:
//
//  1. a context.Context parameter that is not the first parameter — the
//     standard position; mixed orders hide the context from callers that
//     grep for `ctx context.Context` signatures;
//  2. a context.Context struct field — a stored context outlives the call
//     that supplied it, silently decoupling cancellation from the caller
//     (the sanctioned pattern is a `done <-chan struct{}` field wired
//     from ctx.Done() at the call boundary, as aio's sqe does);
//  3. context.Background() or context.TODO() outside package main, test
//     files, and init/main/Default* setup functions — a fresh root
//     context inside a library function severs the caller's cancellation.
//
// Worker pools whose lifetime genuinely exceeds any caller (for example
// the checkpointer's background flusher, whose cancellation point is its
// jobs channel closing) annotate the call with //lint:ignore ctxflow.
var Ctxflow = &Analyzer{
	Name:     "ctxflow",
	Doc:      "context.Context must be the first parameter, never a struct field; Background/TODO only in main, tests, and setup",
	Severity: SeverityError,
	Run:      runCtxflow,
}

func runCtxflow(p *Pass) {
	for _, f := range p.Files {
		if !importsPkg(f, "context") {
			continue
		}
		fname := p.Fset.Position(f.Pos()).Filename
		isTest := strings.HasSuffix(fname, "_test.go")
		isMain := f.Name.Name == "main"
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.FuncDecl:
				checkCtxParamPosition(p, n.Type)
			case *ast.FuncLit:
				checkCtxParamPosition(p, n.Type)
			case *ast.StructType:
				for _, field := range n.Fields.List {
					if isContextType(field.Type) {
						p.Reportf(field.Pos(), "context.Context stored in a struct field; pass it as a parameter (or store a done channel wired from ctx.Done() at the call boundary)")
					}
				}
			}
			return true
		})
		if isTest || isMain {
			continue
		}
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil || ctxRootAllowed(fd.Name.Name) {
				continue
			}
			ast.Inspect(fd.Body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				sel, ok := call.Fun.(*ast.SelectorExpr)
				if !ok {
					return true
				}
				x, ok := sel.X.(*ast.Ident)
				if !ok || x.Name != "context" {
					return true
				}
				if sel.Sel.Name == "Background" || sel.Sel.Name == "TODO" {
					p.Reportf(call.Pos(), "context.%s creates a root context in a library function; accept a ctx parameter instead", sel.Sel.Name)
				}
				return true
			})
		}
	}
}

// checkCtxParamPosition flags context.Context parameters that are not in
// the leading position of the signature (the receiver does not count).
func checkCtxParamPosition(p *Pass, ft *ast.FuncType) {
	if ft.Params == nil {
		return
	}
	pos := 0 // running parameter index, counting grouped names
	for _, field := range ft.Params.List {
		n := len(field.Names)
		if n == 0 {
			n = 1
		}
		if isContextType(field.Type) && pos != 0 {
			p.Reportf(field.Pos(), "context.Context is parameter %d; make it the first parameter", pos+1)
		}
		pos += n
	}
}

// ctxRootAllowed reports whether the named function may mint a root
// context: package setup and Default-style constructors of long-lived
// process-wide state.
func ctxRootAllowed(name string) bool {
	return name == "init" || name == "main" || strings.HasPrefix(name, "Default")
}

// isContextType matches the syntactic type context.Context.
func isContextType(t ast.Expr) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == "context" && sel.Sel.Name == "Context"
}

// importsPkg reports whether the file imports the given standard-library
// path without renaming it away from its default identifier.
func importsPkg(f *ast.File, path string) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"`+path+`"` {
			continue
		}
		return imp.Name == nil || imp.Name.Name == path
	}
	return false
}
