package lint

import (
	"go/ast"
	"strings"
)

// Shardmsg keeps the shard wire messages codec-safe. The coordinator and
// workers exchange `*Msg` structs through the hand-rolled frame codec in
// internal/shard/wire.go, which serializes exactly what the struct
// declares — fixed-width scalars, digests, and slices of those. A map,
// pointer, channel, function, or interface field in such a struct cannot
// cross that wire: the codec would either skip it silently (a message
// that decodes to less than what was sent) or someone "fixes" the codec
// by encoding an address, which deserializes to garbage in any future
// multi-process deployment. Maps additionally iterate in randomized
// order, so even an in-process shortcut that walks one would break the
// deterministic-schedule guarantee the shard engine makes.
//
// The rule is syntactic: every struct type declared in internal/shard
// whose name ends in "Msg" is checked field by field, recursing through
// slice and array element types. Embedded flat structs (ChunkRefMsg
// inside UnitMsg) are fine — the offending type constructors are flagged
// wherever they appear in the field's type expression.
var Shardmsg = &Analyzer{
	Name:     "shardmsg",
	Doc:      "mpi-encoded shard message structs must stay flat: no maps, pointers, chans, funcs, or interfaces",
	Severity: SeverityError,
	Run:      runShardmsg,
}

// shardmsgPkgs scopes the rule to the package that owns the wire codec.
var shardmsgPkgs = []string{
	"internal/shard",
}

func runShardmsg(p *Pass) {
	if !pkgIn(p.Pkg, shardmsgPkgs...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			ts, ok := n.(*ast.TypeSpec)
			if !ok || !strings.HasSuffix(ts.Name.Name, "Msg") {
				return true
			}
			st, ok := ts.Type.(*ast.StructType)
			if !ok {
				return true
			}
			for _, field := range st.Fields.List {
				if bad, what := unwireable(field.Type); bad {
					p.Reportf(field.Pos(), "%s field in wire message %s: the shard codec only carries flat data", what, ts.Name.Name)
				}
			}
			return true
		})
	}
}

// unwireable reports whether the field type contains a type constructor
// the shard wire codec cannot carry, and names the offending kind.
func unwireable(t ast.Expr) (bool, string) {
	switch x := t.(type) {
	case *ast.MapType:
		return true, "map"
	case *ast.StarExpr:
		return true, "pointer"
	case *ast.ChanType:
		return true, "channel"
	case *ast.FuncType:
		return true, "function"
	case *ast.InterfaceType:
		return true, "interface"
	case *ast.ArrayType:
		return unwireable(x.Elt)
	case *ast.ParenExpr:
		return unwireable(x.X)
	}
	return false, ""
}
