package lint

import "testing"

func TestFloatCmp(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "declared float params",
			pkg:  "internal/x",
			src: `package p
func f(a, b float64) bool { return a == b }
`,
			want: []string{"2:floatcmp"},
		},
		{
			name: "var decl and arithmetic",
			pkg:  "internal/x",
			src: `package p
func f() bool {
	var x float32
	y := x * 2
	return y != x
}
`,
			want: []string{"5:floatcmp"},
		},
		{
			name: "ordered comparison on float",
			pkg:  "internal/x",
			src: `package p
func f(tol float64, residual float64) bool { return residual < tol }
`,
			want: []string{"2:floatcmp"},
		},
		{
			name: "fractional literal is float evidence",
			pkg:  "internal/x",
			src: `package p
func f(n int64) bool { return float64(n) >= 1.5 }
`,
			want: []string{"2:floatcmp"},
		},
		{
			name: "integral float literal vs int is exempt",
			pkg:  "internal/x",
			src: `package p
func f(bytes int64) bool { return bytes >= 1e9 }
`,
			want: nil,
		},
		{
			name: "zero guard is exempt for ordered ops",
			pkg:  "internal/x",
			src: `package p
func f(x float64) bool { return x <= 0 }
`,
			want: nil,
		},
		{
			name: "zero is not exempt for equality",
			pkg:  "internal/x",
			src: `package p
func f(x float64) bool { return x == 0 }
`,
			want: []string{"2:floatcmp"},
		},
		{
			name: "math call result",
			pkg:  "internal/x",
			src: `package p
import "math"
func f(a, b, eps float64) bool { return math.Abs(a-b) > eps }
`,
			want: []string{"3:floatcmp"},
		},
		{
			name: "float slice element via range",
			pkg:  "internal/x",
			src: `package p
func f(xs []float64, lo float64) int {
	n := 0
	for _, v := range xs {
		if v > lo {
			n++
		}
	}
	return n
}
`,
			want: []string{"5:floatcmp"},
		},
		{
			name: "closure inherits outer float scope",
			pkg:  "internal/x",
			src: `package p
func f(a float64) func(float64) bool {
	return func(b float64) bool { return a == b }
}
`,
			want: []string{"3:floatcmp"},
		},
		{
			name: "int comparison clean",
			pkg:  "internal/x",
			src: `package p
func f(a, b int) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "errbound package exempt",
			pkg:  "internal/errbound",
			src: `package errbound
func f(a, b float64) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "murmur3 package exempt",
			pkg:  "internal/murmur3",
			src: `package murmur3
func f(a, b float64) bool { return a == b }
`,
			want: nil,
		},
		{
			name: "suppressed",
			pkg:  "internal/x",
			src: `package p
func f(a, b float64) bool {
	//lint:ignore floatcmp IEEE special-value dispatch
	return a == b
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, FloatCmp, tc.pkg, tc.src), tc.want...)
		})
	}
}
