package lint

import (
	"go/ast"
	"strings"
)

// Casprune flags stage-2 skip decisions made on truncated digests. The
// CAS pruning soundness argument (DESIGN §13) rests on full-digest
// keying: inside one content-addressed store a 128-bit leaf digest names
// exactly one stored byte string, so a chunk pair may be pruned from
// stage-2 verification exactly when its FULL digests match. Comparing a
// digest prefix — dig[:8] == other[:8], bytes.Equal(d[:4], e[:4]),
// bytes.HasPrefix(hash, probe) — silently turns "provably identical"
// into "probably identical", and a collision there is a false negative
// the paper's guarantee forbids.
//
// Two shapes are flagged in the CAS-bearing packages:
//
//  1. An ==/!= comparison or a bytes.Equal call where an operand slices
//     a digest-named value with an explicit upper bound (dig[:n],
//     leafHash[a:b]) — a prefix, not the digest.
//  2. A bytes.HasPrefix or strings.HasPrefix call over any digest-named
//     value: prefix matching on a digest is truncation by definition.
//
// Digest-named means the identifier (or selector field) contains "dig",
// "digest", "leaf", or "hash". Full-width copies (dig[:]) are fine.
var Casprune = &Analyzer{
	Name:     "casprune",
	Doc:      "CAS prune decisions must compare full leaf digests, never truncated prefixes",
	Severity: SeverityError,
	Run:      runCasprune,
}

// casprunePkgs scopes the rule to the packages that hold or consume CAS
// digests; elsewhere prefix-matching identifiers named "hash" are
// legitimate (e.g. git revision handling in tooling).
var casprunePkgs = []string{
	"internal/cas",
	"internal/compare",
	"internal/merkle",
	"internal/stream",
	"internal/ckpt",
}

func runCasprune(p *Pass) {
	if !pkgIn(p.Pkg, casprunePkgs...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch e := n.(type) {
			case *ast.BinaryExpr:
				if e.Op.String() != "==" && e.Op.String() != "!=" {
					return true
				}
				if truncatedDigest(e.X) || truncatedDigest(e.Y) {
					p.Reportf(e.Pos(), "digest prefix compared with %s: prune decisions need the full digest", e.Op)
				}
			case *ast.CallExpr:
				fn, pkg := selectorName(e.Fun)
				switch {
				case pkg == "bytes" && fn == "Equal":
					for _, arg := range e.Args {
						if truncatedDigest(arg) {
							p.Reportf(e.Pos(), "digest prefix compared with bytes.Equal: prune decisions need the full digest")
							break
						}
					}
				case (pkg == "bytes" || pkg == "strings") && fn == "HasPrefix":
					for _, arg := range e.Args {
						if digestNamed(arg) {
							p.Reportf(e.Pos(), "prefix match on a digest: prune decisions need the full digest")
							break
						}
					}
				}
			}
			return true
		})
	}
}

// truncatedDigest reports whether e slices a digest-named value with an
// explicit upper bound (a prefix or sub-range, not a full-width copy).
func truncatedDigest(e ast.Expr) bool {
	sl, ok := e.(*ast.SliceExpr)
	if !ok || sl.High == nil {
		return false
	}
	return digestNamed(sl.X)
}

// digestNamed reports whether the expression's base identifier or
// selector field is named after a digest.
func digestNamed(e ast.Expr) bool {
	var name string
	switch x := e.(type) {
	case *ast.Ident:
		name = x.Name
	case *ast.SelectorExpr:
		name = x.Sel.Name
	case *ast.SliceExpr:
		return digestNamed(x.X)
	case *ast.IndexExpr:
		return digestNamed(x.X)
	case *ast.CallExpr:
		// hash.Sum(nil), d.Bytes() — named by the method's receiver.
		if sel, ok := x.Fun.(*ast.SelectorExpr); ok {
			return digestNamed(sel.X)
		}
		return false
	default:
		return false
	}
	lower := strings.ToLower(name)
	for _, marker := range []string{"digest", "dig", "leaf", "hash"} {
		if strings.Contains(lower, marker) {
			return true
		}
	}
	return false
}

// selectorName splits a pkg.Func call expression into its parts.
func selectorName(fun ast.Expr) (name, pkg string) {
	sel, ok := fun.(*ast.SelectorExpr)
	if !ok {
		return "", ""
	}
	if id, ok := sel.X.(*ast.Ident); ok {
		return sel.Sel.Name, id.Name
	}
	return sel.Sel.Name, ""
}
