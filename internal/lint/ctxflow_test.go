package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"testing"
)

// runSourceNamed is runSource with a controllable fixture filename, so the
// _test.go exemption of ctxflow is testable.
func runSourceNamed(t *testing.T, a *Analyzer, pkg, filename, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, filename, src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	diags := AnalyzeFiles(fset, []*ast.File{f}, pkg, []*Analyzer{a})
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%d:%s", d.Line, d.Rule))
	}
	return out
}

func TestCtxflow(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		file string
		src  string
		want []string
	}{
		{
			name: "ctx first parameter is clean",
			pkg:  "internal/compare",
			src: `package compare
import "context"
func Compare(ctx context.Context, a, b string) error { return ctx.Err() }
`,
		},
		{
			name: "ctx in second position flagged",
			pkg:  "internal/compare",
			src: `package compare
import "context"
func Compare(name string, ctx context.Context) error { return ctx.Err() }
`,
			want: []string{"3:ctxflow"},
		},
		{
			name: "ctx late in a grouped parameter list flagged",
			pkg:  "internal/compare",
			src: `package compare
import "context"
func Compare(a, b string, ctx context.Context, n int) error { return ctx.Err() }
`,
			want: []string{"3:ctxflow"},
		},
		{
			name: "ctx misplaced in a function literal flagged",
			pkg:  "internal/stream",
			src: `package stream
import "context"
var hook = func(n int, ctx context.Context) error { return ctx.Err() }
`,
			want: []string{"3:ctxflow"},
		},
		{
			name: "context struct field flagged",
			pkg:  "internal/stream",
			src: `package stream
import "context"
type job struct {
	name string
	ctx  context.Context
}

func use(ctx context.Context) job { return job{ctx: ctx} }
`,
			want: []string{"5:ctxflow"},
		},
		{
			name: "done channel field is the sanctioned alternative",
			pkg:  "internal/aio",
			src: `package aio
import "context"
type sqe struct {
	cancel <-chan struct{}
}

func submit(ctx context.Context) sqe { return sqe{cancel: ctx.Done()} }
`,
		},
		{
			name: "Background in a library function flagged",
			pkg:  "internal/compare",
			src: `package compare
import "context"
func load(name string) error {
	ctx := context.Background()
	return ctx.Err()
}
`,
			want: []string{"4:ctxflow"},
		},
		{
			name: "TODO in a library function flagged",
			pkg:  "internal/compare",
			src: `package compare
import "context"
func load(name string) error { return context.TODO().Err() }
`,
			want: []string{"3:ctxflow"},
		},
		{
			name: "Background allowed in package main",
			pkg:  "cmd/reprocmp",
			src: `package main
import "context"
func run() error { return context.Background().Err() }
`,
		},
		{
			name: "Background allowed in test files",
			pkg:  "internal/compare",
			file: "compare_test.go",
			src: `package compare
import "context"
func helper() error { return context.Background().Err() }
`,
		},
		{
			name: "Background allowed in Default-style setup",
			pkg:  "internal/device",
			src: `package device
import "context"
func DefaultPool() error { return context.Background().Err() }
`,
		},
		{
			name: "Background allowed in init",
			pkg:  "internal/device",
			src: `package device
import "context"
var rootErr error
func init() { rootErr = context.Background().Err() }
`,
		},
		{
			name: "suppression comment clears the finding",
			pkg:  "internal/ckpt",
			src: `package ckpt
import "context"
func flushOne(name string) error {
	//lint:ignore ctxflow the flusher outlives any caller
	ctx := context.Background()
	return ctx.Err()
}
`,
		},
		{
			name: "renamed import is out of scope",
			pkg:  "internal/compare",
			src: `package compare
import stdctx "context"
func load(name string, ctx stdctx.Context) error { return ctx.Err() }
`,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := tc.file
			if file == "" {
				file = "fixture.go"
			}
			expectDiags(t, runSourceNamed(t, Ctxflow, tc.pkg, file, tc.src), tc.want...)
		})
	}
}
