package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"testing"
)

// runSource parses src as a single file of package pkg and returns the
// surviving diagnostics of one analyzer, formatted "line:rule".
func runSource(t *testing.T, a *Analyzer, pkg, src string) []string {
	t.Helper()
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fixture.go", src, parser.ParseComments)
	if err != nil {
		t.Fatalf("parse fixture: %v", err)
	}
	diags := AnalyzeFiles(fset, []*ast.File{f}, pkg, []*Analyzer{a})
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%d:%s", d.Line, d.Rule))
	}
	return out
}

// expectDiags asserts the exact diagnostic set.
func expectDiags(t *testing.T, got []string, want ...string) {
	t.Helper()
	if len(got) != len(want) {
		t.Fatalf("diagnostics: got %v, want %v", got, want)
	}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("diagnostic %d: got %v, want %v", i, got, want)
		}
	}
}

func TestSeverityString(t *testing.T) {
	if SeverityError.String() != "error" || SeverityWarning.String() != "warning" {
		t.Fatalf("severity names: %v %v", SeverityError, SeverityWarning)
	}
}

func TestDiagnosticString(t *testing.T) {
	d := Diagnostic{File: "a.go", Line: 3, Col: 7, Rule: "floatcmp", Severity: "error", Message: "m"}
	want := "a.go:3:7: error: m [floatcmp]"
	if d.String() != want {
		t.Fatalf("String: got %q want %q", d.String(), want)
	}
}

func TestByName(t *testing.T) {
	for _, a := range All() {
		if ByName(a.Name) != a {
			t.Fatalf("ByName(%q) did not round-trip", a.Name)
		}
	}
	if ByName("nope") != nil {
		t.Fatal("ByName(nope) should be nil")
	}
}

func TestHasErrors(t *testing.T) {
	if HasErrors(nil) {
		t.Fatal("empty set has no errors")
	}
	warn := []Diagnostic{{Severity: SeverityWarning.String()}}
	if HasErrors(warn) {
		t.Fatal("warnings alone must not fail the gate")
	}
	if !HasErrors(append(warn, Diagnostic{Severity: SeverityError.String()})) {
		t.Fatal("error severity must fail the gate")
	}
}

// TestSuppressionPlacement checks both sanctioned directive placements:
// the line above the finding and end-of-line on the finding itself, and
// that a directive for a different rule does not suppress.
func TestSuppressionPlacement(t *testing.T) {
	const above = `package p
func f(a, b float64) bool {
	//lint:ignore floatcmp test reason
	return a == b
}
`
	expectDiags(t, runSource(t, FloatCmp, "internal/x", above))

	const inline = `package p
func f(a, b float64) bool {
	return a == b //lint:ignore floatcmp test reason
}
`
	expectDiags(t, runSource(t, FloatCmp, "internal/x", inline))

	const wrongRule = `package p
func f(a, b float64) bool {
	//lint:ignore maphash not the right rule
	return a == b
}
`
	expectDiags(t, runSource(t, FloatCmp, "internal/x", wrongRule), "4:floatcmp")

	const wildcard = `package p
func f(a, b float64) bool {
	//lint:ignore * blanket
	return a == b
}
`
	expectDiags(t, runSource(t, FloatCmp, "internal/x", wildcard))

	const multiRule = `package p
func f(a, b float64) bool {
	//lint:ignore gocheck,floatcmp two rules
	return a == b
}
`
	expectDiags(t, runSource(t, FloatCmp, "internal/x", multiRule))
}

// TestRunWalksTree exercises the directory runner end to end on a
// synthetic module.
func TestRunWalksTree(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	mustWrite(t, root, "internal/sub/bad.go", `package sub
func f(a, b float64) bool { return a != b }
`)
	mustWrite(t, root, "internal/sub/bad_test.go", `package sub
func g(a, b float64) bool { return a != b }
`)
	mustWrite(t, root, "testdata/skipme.go", "package broken {{{\n")

	diags, err := Run(Config{Root: root}, "./...")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 || diags[0].Rule != "floatcmp" || diags[0].Line != 2 {
		t.Fatalf("want one floatcmp finding at line 2, got %v", diags)
	}

	withTests, err := Run(Config{Root: root, IncludeTests: true}, "./...")
	if err != nil {
		t.Fatalf("Run with tests: %v", err)
	}
	if len(withTests) != 2 {
		t.Fatalf("want 2 findings with tests included, got %v", withTests)
	}

	single, err := Run(Config{Root: root}, "./internal/sub")
	if err != nil {
		t.Fatalf("Run single dir: %v", err)
	}
	if len(single) != 1 {
		t.Fatalf("single-dir pattern: want 1 finding, got %v", single)
	}

	if _, err := Run(Config{Root: root}, "./missing"); err == nil {
		t.Fatal("bad pattern must error")
	}
}

func TestFindModuleRoot(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n")
	sub := filepath.Join(root, "a", "b")
	if err := os.MkdirAll(sub, 0o755); err != nil {
		t.Fatal(err)
	}
	got, err := FindModuleRoot(sub)
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	// Resolve symlinks (macOS TMPDIR) before comparing.
	wantReal, _ := filepath.EvalSymlinks(root)
	gotReal, _ := filepath.EvalSymlinks(got)
	if gotReal != wantReal {
		t.Fatalf("root: got %s want %s", got, root)
	}
}

func mustWrite(t *testing.T, root, rel, content string) {
	t.Helper()
	path := filepath.Join(root, rel)
	if err := os.MkdirAll(filepath.Dir(path), 0o755); err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
}
