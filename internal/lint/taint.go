package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// This file is the tier-2 taint engine: a type-aware dataflow analysis
// that propagates "this value is nondeterministic" facts through
// assignments, composite data, channels, returns, and intra-package call
// edges, and reports when a tainted value reaches a rule-defined sink.
//
// The fact lattice is deliberately small. A variable's abstract value is
// a set of taint facts (each tagged with the kind of nondeterminism and
// the source-first path that produced it) plus a set of parameter
// lineages ("this value derives from parameter #i"). Lineages are what
// make the analysis interprocedural: they become per-function summaries
// (param → sink, param → return, source → return) that callers join
// against at call sites, so a map-ordered key laundered through two
// helper hops still arrives at the digest write with its full
// source→sink path intact.
//
// Conservatism rules, in priority order:
//  1. Never report without a positive source→sink chain (no finding from
//     partial type info; dynamic dispatch and cross-package flows are
//     dropped edges, not guesses).
//  2. Never remove a fact except at an explicit sanitizer (a sort call
//     clears order-sensitivity; nothing clears value nondeterminism).
//  3. Assignment accumulates (union) rather than overwrites: an `if`
//     branch that taints a variable taints every later use.

// taintKind classifies the nondeterminism a fact records.
type taintKind uint8

const (
	// taintMapOrder: value's position in an emission sequence depends on
	// Go's randomized map iteration order.
	taintMapOrder taintKind = iota
	// taintWallClock: value derives from time.Now/Since/Until.
	taintWallClock
	// taintRand: value derives from the auto-seeded global math/rand
	// source.
	taintRand
	// taintGoroutine: value arrives in goroutine completion order.
	taintGoroutine
	// taintReadDir: value reflects directory contents, which vary with
	// the host filesystem rather than the run inputs.
	taintReadDir
)

// String names the kind for diagnostics.
func (k taintKind) String() string {
	switch k {
	case taintMapOrder:
		return "map iteration order"
	case taintWallClock:
		return "wall-clock time"
	case taintRand:
		return "unseeded math/rand output"
	case taintGoroutine:
		return "goroutine completion order"
	case taintReadDir:
		return "directory listing contents"
	default:
		return fmt.Sprintf("taintKind(%d)", int(k))
	}
}

// orderSensitive reports whether sorting launders the taint: an order
// taint names nondeterministic *sequence position*, which a sort
// restores; a value taint (clock, rand) survives any reordering.
func (k taintKind) orderSensitive() bool {
	return k == taintMapOrder || k == taintGoroutine || k == taintReadDir
}

// flowStep is one hop of a source→sink trail, engine-internal (converted
// to PathStep at report time).
type flowStep struct {
	pos  token.Pos
	note string
}

// maxPathSteps bounds trail growth through recursion and long chains.
const maxPathSteps = 16

func extendPath(path []flowStep, steps ...flowStep) []flowStep {
	out := make([]flowStep, 0, len(path)+len(steps))
	out = append(out, path...)
	for _, s := range steps {
		if len(out) >= maxPathSteps {
			break
		}
		out = append(out, s)
	}
	return out
}

// fact is one taint with its provenance trail.
type fact struct {
	kind taintKind
	path []flowStep
}

// lineage records that a value derives from a function parameter, with
// the in-function trail and whether the data passed through a sort (so
// order-sensitive taints joined by a caller are dropped).
type lineage struct {
	path   []flowStep
	sorted bool
}

// absVal is the abstract value of an expression or variable.
type absVal struct {
	facts  []fact
	params map[int]lineage
}

func (v *absVal) empty() bool {
	return v == nil || (len(v.facts) == 0 && len(v.params) == 0)
}

// union merges other into v, deduplicating facts by kind (first trail
// wins — it is the shortest seen) and lineages by parameter index.
func (v *absVal) union(other *absVal) bool {
	if other.empty() {
		return false
	}
	changed := false
	for _, f := range other.facts {
		if !v.hasKind(f.kind) {
			v.facts = append(v.facts, f)
			changed = true
		}
	}
	for i, lin := range other.params {
		if v.params == nil {
			v.params = map[int]lineage{}
		}
		if _, ok := v.params[i]; !ok {
			v.params[i] = lin
			changed = true
		}
	}
	return changed
}

func (v *absVal) hasKind(k taintKind) bool {
	for _, f := range v.facts {
		if f.kind == k {
			return true
		}
	}
	return false
}

// sinkArg names a call argument that feeds a sink.
type sinkArg struct {
	arg  int // argument index; the last index of a variadic sink covers the tail
	desc string
}

// sinkHit is a summary entry: "parameter #i of this function reaches the
// named sink" with the in-function trail.
type sinkHit struct {
	desc   string
	path   []flowStep
	sorted bool
}

// funcSummary is the interprocedural abstract of one function.
type funcSummary struct {
	retFacts   []fact            // taints sourced inside that reach a return value
	retParams  map[int]bool      // parameters that flow to a return value
	sinkParams map[int][]sinkHit // parameters that reach a sink inside
}

func newFuncSummary() *funcSummary {
	return &funcSummary{retParams: map[int]bool{}, sinkParams: map[int][]sinkHit{}}
}

// signature renders the summary's convergence-relevant shape: trails are
// excluded so path churn cannot keep the fixpoint spinning.
func (s *funcSummary) signature() string {
	if s == nil {
		return ""
	}
	kinds := make([]int, 0, len(s.retFacts))
	for _, f := range s.retFacts {
		kinds = append(kinds, int(f.kind))
	}
	sort.Ints(kinds)
	rets := make([]int, 0, len(s.retParams))
	for i := range s.retParams {
		rets = append(rets, i)
	}
	sort.Ints(rets)
	var sinks []string
	for i, hits := range s.sinkParams {
		for _, h := range hits {
			sinks = append(sinks, fmt.Sprintf("%d:%s:%v", i, h.desc, h.sorted))
		}
	}
	sort.Strings(sinks)
	return fmt.Sprintf("%v|%v|%v", kinds, rets, sinks)
}

// taintSpec parameterizes the engine for one rule: which structural
// sources are live, how calls map to sources and sinks, and whether sort
// calls sanitize order taints.
type taintSpec struct {
	// mapRange taints map-range key/value variables with taintMapOrder.
	mapRange bool
	// goroutineRecv taints receives from fan-in channels (a channel sent
	// to from goroutines launched in a loop, or from two or more
	// goroutines) with taintGoroutine.
	goroutineRecv bool
	// callSources maps a call to the taints it introduces; callee may be
	// nil for dynamic calls.
	callSources func(e *taintEngine, call *ast.CallExpr, callee *types.Func) []fact
	// sinks maps a call to the sink arguments it exposes.
	sinks func(e *taintEngine, call *ast.CallExpr, callee *types.Func) []sinkArg
	// sortSanitizes enables the sort.*/slices.Sort* sanitizer.
	sortSanitizes bool
}

// violation is one source→sink chain awaiting report.
type violation struct {
	pos  token.Pos
	kind taintKind
	desc string
	path []flowStep
}

// taintEngine drives the analysis of one package under one spec.
type taintEngine struct {
	pass  *Pass
	info  *types.Info
	spec  *taintSpec
	graph *callGraph
	sums  map[*types.Func]*funcSummary
}

// runTaint executes the engine: summary fixpoint, then a reporting pass.
func runTaint(p *Pass, spec *taintSpec) {
	if p.TypesInfo == nil {
		return
	}
	e := &taintEngine{
		pass:  p,
		info:  p.TypesInfo,
		spec:  spec,
		graph: buildCallGraph(p.Files, p.TypesInfo),
		sums:  map[*types.Func]*funcSummary{},
	}
	// Fixpoint over intra-package summaries. Each round propagates facts
	// across one more call hop; the tree's helper chains are shallow, so
	// the loop converges in two or three rounds, with a hard cap as a
	// recursion backstop.
	for round := 0; round < 6; round++ {
		changed := false
		for _, fn := range e.graph.order {
			sum, _ := e.analyzeFunc(fn, false)
			if sum.signature() != e.sums[fn].signature() {
				changed = true
			}
			e.sums[fn] = sum
		}
		if !changed {
			break
		}
	}
	for _, fn := range e.graph.order {
		_, viols := e.analyzeFunc(fn, true)
		for _, v := range viols {
			path := make([]PathStep, 0, len(v.path))
			for _, s := range v.path {
				path = append(path, p.Step(s.pos, "%s", s.note))
			}
			p.ReportPath(v.pos, path, "%s flows into %s; the recorded result depends on runtime state, not run inputs", v.kind, v.desc)
		}
	}
}

// funcState is the per-function walk state.
type funcState struct {
	e            *taintEngine
	env          map[types.Object]*absVal
	sum          *funcSummary
	namedResults []types.Object
	goChans      map[types.Object]bool
	viols        map[string]violation
}

// analyzeFunc walks one function body twice (the second pass picks up
// loop-carried flows) and returns its fresh summary plus, when collect
// is set, the violations found inside it.
func (e *taintEngine) analyzeFunc(fn *types.Func, collect bool) (*funcSummary, []violation) {
	decl := e.graph.decls[fn]
	st := &funcState{
		e:     e,
		env:   map[types.Object]*absVal{},
		sum:   newFuncSummary(),
		viols: map[string]violation{},
	}
	// Seed parameter lineages.
	idx := 0
	if decl.Type.Params != nil {
		for _, field := range decl.Type.Params.List {
			if len(field.Names) == 0 {
				idx++
				continue
			}
			for _, name := range field.Names {
				if obj := e.info.Defs[name]; obj != nil && name.Name != "_" {
					st.env[obj] = &absVal{params: map[int]lineage{idx: {}}}
				}
				idx++
			}
		}
	}
	// Named results support bare returns.
	if decl.Type.Results != nil {
		for _, field := range decl.Type.Results.List {
			for _, name := range field.Names {
				if obj := e.info.Defs[name]; obj != nil && name.Name != "_" {
					st.namedResults = append(st.namedResults, obj)
				}
			}
		}
	}
	if e.spec.goroutineRecv {
		st.goChans = fanInChans(e.info, decl.Body)
	}
	st.walk(decl.Body)
	st.walk(decl.Body)
	if !collect {
		return st.sum, nil
	}
	keys := make([]string, 0, len(st.viols))
	for k := range st.viols {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	out := make([]violation, 0, len(keys))
	for _, k := range keys {
		out = append(out, st.viols[k])
	}
	return st.sum, out
}

// walk visits the body in source order, updating the environment and
// checking sinks.
func (st *funcState) walk(body *ast.BlockStmt) {
	ast.Inspect(body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			st.assign(n)
		case *ast.DeclStmt:
			st.declStmt(n)
		case *ast.RangeStmt:
			st.rangeStmt(n)
		case *ast.ReturnStmt:
			st.returnStmt(n)
		case *ast.SendStmt:
			// ch <- v: channel contents carry v's taints to receivers.
			if obj := rootObj(st.e.info, n.Chan); obj != nil {
				st.envFor(obj).union(st.eval(n.Value))
			}
		case *ast.CallExpr:
			st.callStmt(n)
		}
		return true
	})
}

// envFor returns (allocating) the abstract value bound to obj.
func (st *funcState) envFor(obj types.Object) *absVal {
	v := st.env[obj]
	if v == nil {
		v = &absVal{}
		st.env[obj] = v
	}
	return v
}

// assign handles = / := / op= statements.
func (st *funcState) assign(n *ast.AssignStmt) {
	switch {
	case len(n.Lhs) == len(n.Rhs):
		for i, lhs := range n.Lhs {
			val := st.eval(n.Rhs[i])
			if n.Tok != token.ASSIGN && n.Tok != token.DEFINE {
				// Compound assignment: a commutative fold over integers
				// (sum += v) is order-insensitive and exact, so order
				// taints do not propagate; everything else does.
				if commutativeAssign(n.Tok) && isIntegerType(st.e.info, lhs) {
					val = dropOrderFacts(val)
				}
			}
			st.assignTo(lhs, val)
		}
	case len(n.Rhs) == 1:
		// Tuple assignment from one call/map-read: every LHS gets the
		// RHS's abstract value.
		val := st.eval(n.Rhs[0])
		for _, lhs := range n.Lhs {
			st.assignTo(lhs, val)
		}
	}
}

// declStmt handles `var x = expr` declarations.
func (st *funcState) declStmt(n *ast.DeclStmt) {
	gd, ok := n.Decl.(*ast.GenDecl)
	if !ok || gd.Tok != token.VAR {
		return
	}
	for _, spec := range gd.Specs {
		vs, ok := spec.(*ast.ValueSpec)
		if !ok {
			continue
		}
		for i, name := range vs.Names {
			if i < len(vs.Values) {
				st.assignTo(name, st.eval(vs.Values[i]))
			} else if len(vs.Values) == 1 && len(vs.Names) > 1 {
				st.assignTo(name, st.eval(vs.Values[0]))
			}
		}
	}
}

// assignTo merges val into the LHS's root object.
func (st *funcState) assignTo(lhs ast.Expr, val *absVal) {
	if val.empty() {
		return
	}
	if obj := rootObj(st.e.info, lhs); obj != nil {
		st.envFor(obj).union(val)
	}
}

// rangeStmt taints loop variables for map ranges, fan-in channel ranges,
// and ranges over order-tainted sequences.
func (st *funcState) rangeStmt(n *ast.RangeStmt) {
	var src absVal
	tv, ok := st.e.info.Types[n.X]
	if ok {
		switch tv.Type.Underlying().(type) {
		case *types.Map:
			if st.e.spec.mapRange {
				src.facts = append(src.facts, fact{
					kind: taintMapOrder,
					path: []flowStep{{pos: n.X.Pos(), note: "map iterated in randomized order"}},
				})
			}
		case *types.Chan:
			if st.goChans != nil {
				if obj := rootObj(st.e.info, n.X); obj != nil && st.goChans[obj] {
					src.facts = append(src.facts, fact{
						kind: taintGoroutine,
						path: []flowStep{{pos: n.X.Pos(), note: "receives goroutine results in completion order"}},
					})
				}
			}
		}
	}
	// A sequence whose order is already tainted taints its elements and
	// indices: position depends on the nondeterministic order upstream.
	if xv := st.eval(n.X); !xv.empty() {
		src.union(xv)
	}
	if src.empty() {
		return
	}
	for _, v := range []ast.Expr{n.Key, n.Value} {
		if id, ok := v.(*ast.Ident); ok && id.Name != "_" {
			if obj := st.objOf(id); obj != nil {
				st.envFor(obj).union(&src)
			}
		}
	}
}

// returnStmt folds returned values into the summary.
func (st *funcState) returnStmt(n *ast.ReturnStmt) {
	record := func(val *absVal) {
		for _, f := range val.facts {
			found := false
			for _, have := range st.sum.retFacts {
				if have.kind == f.kind {
					found = true
					break
				}
			}
			if !found {
				st.sum.retFacts = append(st.sum.retFacts, f)
			}
		}
		for i := range val.params {
			st.sum.retParams[i] = true
		}
	}
	if len(n.Results) == 0 {
		for _, obj := range st.namedResults {
			if v := st.env[obj]; v != nil {
				record(v)
			}
		}
		return
	}
	for _, res := range n.Results {
		record(st.eval(res))
	}
}

// callStmt handles the statement-level effects of a call: sanitizers,
// copy's destination taint, and sink checks (direct and via summaries).
func (st *funcState) callStmt(call *ast.CallExpr) {
	e := st.e
	if e.spec.sortSanitizes && st.sanitizeIfSort(call) {
		return
	}
	if builtinName(e.info, call) == "copy" && len(call.Args) == 2 {
		if obj := rootObj(e.info, call.Args[0]); obj != nil {
			st.envFor(obj).union(st.eval(call.Args[1]))
		}
		return
	}
	callee := staticCallee(e.info, call)

	// Direct sinks from the rule table.
	if e.spec.sinks != nil {
		for _, s := range e.spec.sinks(e, call, callee) {
			for _, arg := range argsForIndex(call, s.arg) {
				st.checkSinkArg(call, arg, s.desc, nil, false)
			}
		}
	}

	// Summary sinks: a tainted value passed to a helper whose parameter
	// reaches a sink inside it.
	if callee != nil {
		if sum := e.sums[callee]; sum != nil {
			for paramIdx, hits := range sum.sinkParams {
				for _, arg := range argsForIndex(call, paramIdx) {
					for _, hit := range hits {
						through := extendPath(
							[]flowStep{{pos: call.Pos(), note: fmt.Sprintf("passed to %s()", callee.Name())}},
							hit.path...)
						st.checkSinkArg(call, arg, hit.desc, through, hit.sorted)
					}
				}
			}
		}
	}
}

// checkSinkArg records violations and summary entries for one value
// reaching one sink. through is the trail appended after the argument's
// own trail (call hop + callee-internal steps); sorted marks that the
// callee sorted the data before sinking it.
func (st *funcState) checkSinkArg(call *ast.CallExpr, arg ast.Expr, desc string, through []flowStep, sorted bool) {
	val := st.eval(arg)
	if val.empty() {
		return
	}
	sinkStep := flowStep{pos: call.Pos(), note: "reaches " + desc}
	for _, f := range val.facts {
		if sorted && f.kind.orderSensitive() {
			continue
		}
		path := extendPath(f.path, through...)
		if len(through) == 0 {
			path = extendPath(path, sinkStep)
		}
		key := fmt.Sprintf("%d|%d|%s", call.Pos(), f.kind, desc)
		if _, ok := st.viols[key]; !ok {
			st.viols[key] = violation{pos: call.Pos(), kind: f.kind, desc: desc, path: path}
		}
	}
	for i, lin := range val.params {
		path := extendPath(lin.path, through...)
		if len(through) == 0 {
			path = extendPath(path, sinkStep)
		}
		st.sum.sinkParams[i] = appendHit(st.sum.sinkParams[i], sinkHit{
			desc:   desc,
			path:   path,
			sorted: sorted || lin.sorted,
		})
	}
}

// appendHit adds a hit unless an equivalent one (same desc and sorted
// flag) is already recorded.
func appendHit(hits []sinkHit, h sinkHit) []sinkHit {
	for _, have := range hits {
		if have.desc == h.desc && have.sorted == h.sorted {
			return hits
		}
	}
	return append(hits, h)
}

// sanitizeIfSort clears order taints when call is sort.X(target) or
// slices.SortX(target), returning true if it was a sort call.
func (st *funcState) sanitizeIfSort(call *ast.CallExpr) bool {
	sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	pkgID, ok := sel.X.(*ast.Ident)
	if !ok {
		return false
	}
	pkgName, ok := st.e.info.Uses[pkgID].(*types.PkgName)
	if !ok {
		return false
	}
	switch pkgName.Imported().Path() {
	case "sort":
	case "slices":
		if !hasPrefix(sel.Sel.Name, "Sort") {
			return false
		}
	default:
		return false
	}
	obj := rootObj(st.e.info, call.Args[0])
	if obj == nil {
		return false
	}
	if v := st.env[obj]; v != nil {
		v.facts = dropOrderFacts(&absVal{facts: v.facts}).facts
		for i, lin := range v.params {
			lin.sorted = true
			lin.path = extendPath(lin.path, flowStep{pos: call.Pos(), note: "order restored by sort"})
			v.params[i] = lin
		}
	}
	return true
}

func hasPrefix(s, prefix string) bool {
	return len(s) >= len(prefix) && s[:len(prefix)] == prefix
}

// dropOrderFacts returns a copy of val without order-sensitive facts.
func dropOrderFacts(val *absVal) *absVal {
	out := &absVal{params: val.params}
	for _, f := range val.facts {
		if !f.kind.orderSensitive() {
			out.facts = append(out.facts, f)
		}
	}
	return out
}

// eval computes the abstract value of an expression. It never mutates
// the environment.
func (st *funcState) eval(expr ast.Expr) *absVal {
	e := st.e
	out := &absVal{}
	switch x := expr.(type) {
	case *ast.Ident:
		if obj := st.objOf(x); obj != nil {
			if v := st.env[obj]; v != nil {
				out.union(v)
			}
		}
	case *ast.ParenExpr:
		return st.eval(x.X)
	case *ast.StarExpr:
		return st.eval(x.X)
	case *ast.UnaryExpr:
		if x.Op == token.ARROW {
			// Channel receive: fan-in channels introduce completion-order
			// taint; any channel relays the taints its senders put in.
			if obj := rootObj(e.info, x.X); obj != nil {
				if st.goChans != nil && st.goChans[obj] {
					out.facts = append(out.facts, fact{
						kind: taintGoroutine,
						path: []flowStep{{pos: x.Pos(), note: "receives goroutine results in completion order"}},
					})
				}
				if v := st.env[obj]; v != nil {
					out.union(v)
				}
			}
			return out
		}
		return st.eval(x.X)
	case *ast.BinaryExpr:
		out.union(st.eval(x.X))
		out.union(st.eval(x.Y))
	case *ast.SelectorExpr:
		// Field access inherits the container's taints; package
		// qualifiers have no value to evaluate.
		if _, ok := e.info.Uses[x.Sel].(*types.Func); !ok {
			out.union(st.eval(x.X))
		}
	case *ast.IndexExpr:
		out.union(st.eval(x.X))
		out.union(st.eval(x.Index))
	case *ast.SliceExpr:
		out.union(st.eval(x.X))
	case *ast.TypeAssertExpr:
		out.union(st.eval(x.X))
	case *ast.CompositeLit:
		for _, elt := range x.Elts {
			if kv, ok := elt.(*ast.KeyValueExpr); ok {
				out.union(st.eval(kv.Value))
				continue
			}
			out.union(st.eval(elt))
		}
	case *ast.CallExpr:
		return st.evalCall(x)
	}
	return out
}

// evalCall computes the abstract value a call returns.
func (st *funcState) evalCall(call *ast.CallExpr) *absVal {
	e := st.e
	out := &absVal{}

	// Conversions pass the operand through.
	if isConversion(e.info, call) {
		if len(call.Args) == 1 {
			return st.eval(call.Args[0])
		}
		return out
	}
	switch builtinName(e.info, call) {
	case "":
		// not a builtin; fall through
	case "append":
		for _, a := range call.Args {
			out.union(st.eval(a))
		}
		return out
	case "len", "cap", "make", "new", "min", "max", "copy", "delete", "clear", "close", "panic", "print", "println", "recover":
		// len(m) etc. are order-free; make/new are fresh.
		return out
	default:
		return out
	}

	callee := staticCallee(e.info, call)

	// Rule-defined sources.
	if e.spec.callSources != nil {
		if facts := e.spec.callSources(e, call, callee); len(facts) > 0 {
			out.facts = append(out.facts, facts...)
		}
	}

	if callee != nil {
		if sum := e.sums[callee]; sum != nil {
			// Intra-package callee with a summary: returned source taints
			// and pass-through parameters.
			for _, f := range sum.retFacts {
				out.union(&absVal{facts: []fact{{
					kind: f.kind,
					path: extendPath(f.path, flowStep{pos: call.Pos(), note: fmt.Sprintf("returned from %s()", callee.Name())}),
				}}})
			}
			for paramIdx := range sum.retParams {
				for _, arg := range argsForIndex(call, paramIdx) {
					av := st.eval(arg)
					for _, f := range av.facts {
						out.union(&absVal{facts: []fact{{
							kind: f.kind,
							path: extendPath(f.path, flowStep{pos: call.Pos(), note: fmt.Sprintf("through %s()", callee.Name())}),
						}}})
					}
					for i, lin := range av.params {
						out.union(&absVal{params: map[int]lineage{i: {
							path:   extendPath(lin.path, flowStep{pos: call.Pos(), note: fmt.Sprintf("through %s()", callee.Name())}),
							sorted: lin.sorted,
						}}})
					}
				}
			}
			return out
		}
	}

	// Unknown callee: conservative pass-through of the arguments (and
	// the receiver for method calls) — strconv.Itoa(k) of a map-ordered
	// key is still map-ordered.
	if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok {
		if _, isPkg := e.info.Uses[idOf(sel.X)].(*types.PkgName); !isPkg {
			out.union(st.eval(sel.X))
		}
	}
	for _, a := range call.Args {
		out.union(st.eval(a))
	}
	return out
}

// objOf resolves an identifier to its object (definition or use).
func (st *funcState) objOf(id *ast.Ident) types.Object {
	if obj := st.e.info.Defs[id]; obj != nil {
		return obj
	}
	return st.e.info.Uses[id]
}

// rootObj returns the object at the base of an lvalue-ish expression
// chain: x, x.f, x[i], *x, (x) all root at x.
func rootObj(info *types.Info, expr ast.Expr) types.Object {
	for {
		switch x := expr.(type) {
		case *ast.Ident:
			if obj := info.Defs[x]; obj != nil {
				return obj
			}
			return info.Uses[x]
		case *ast.SelectorExpr:
			expr = x.X
		case *ast.IndexExpr:
			expr = x.X
		case *ast.StarExpr:
			expr = x.X
		case *ast.ParenExpr:
			expr = x.X
		case *ast.SliceExpr:
			expr = x.X
		default:
			return nil
		}
	}
}

// idOf unwraps an expression to an identifier, or nil.
func idOf(expr ast.Expr) *ast.Ident {
	id, _ := ast.Unparen(expr).(*ast.Ident)
	return id
}

// argsForIndex returns the call arguments feeding parameter index idx,
// expanding a trailing variadic parameter to the whole tail.
func argsForIndex(call *ast.CallExpr, idx int) []ast.Expr {
	if idx < 0 || idx >= len(call.Args) {
		return nil
	}
	return []ast.Expr{call.Args[idx]}
}

// commutativeAssign reports whether the compound-assignment token folds
// commutatively (+=, *=, |=, &=, ^=).
func commutativeAssign(tok token.Token) bool {
	switch tok {
	case token.ADD_ASSIGN, token.MUL_ASSIGN, token.OR_ASSIGN, token.AND_ASSIGN, token.XOR_ASSIGN:
		return true
	}
	return false
}

// isIntegerType reports whether the expression's type is (underlying) an
// integer — the case where commutative folds are exact.
func isIntegerType(info *types.Info, expr ast.Expr) bool {
	tv, ok := info.Types[expr]
	if !ok || tv.Type == nil {
		return false
	}
	basic, ok := tv.Type.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsInteger != 0
}

// fanInChans finds channels that collect results from goroutines whose
// completion order the scheduler controls: a channel sent to inside a
// `go` statement that is either launched in a loop or duplicated (two or
// more go statements sending to it).
func fanInChans(info *types.Info, body *ast.BlockStmt) map[types.Object]bool {
	sends := map[types.Object]int{}
	var visit func(n ast.Node, loopDepth int)
	visit = func(n ast.Node, loopDepth int) {
		switch n := n.(type) {
		case nil:
			return
		case *ast.ForStmt:
			visitChildren(n, loopDepth+1, visit)
			return
		case *ast.RangeStmt:
			visitChildren(n, loopDepth+1, visit)
			return
		case *ast.GoStmt:
			weight := 1
			if loopDepth > 0 {
				weight = 2 // loop-launched: many goroutines
			}
			ast.Inspect(n.Call, func(inner ast.Node) bool {
				if send, ok := inner.(*ast.SendStmt); ok {
					if obj := rootObj(info, send.Chan); obj != nil {
						sends[obj] += weight
					}
				}
				return true
			})
			return
		}
		visitChildren(n, loopDepth, visit)
	}
	visit(body, 0)
	out := map[types.Object]bool{}
	for obj, n := range sends {
		if n >= 2 {
			out[obj] = true
		}
	}
	return out
}

// visitChildren applies visit to each direct child of n with the given
// loop depth.
func visitChildren(n ast.Node, depth int, visit func(ast.Node, int)) {
	first := true
	ast.Inspect(n, func(child ast.Node) bool {
		if first {
			first = false
			return true
		}
		if child == nil {
			return false
		}
		visit(child, depth)
		return false
	})
}
