package lint

import (
	"strings"
	"testing"
)

// TestLoaderResolvesLocalImports: a package importing a sibling package
// of the same module type-checks through the loader, and results are
// memoized.
func TestLoaderResolvesLocalImports(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	mustWrite(t, root, "internal/util/util.go", `package util

func Double(x int) int { return 2 * x }
`)
	mustWrite(t, root, "internal/app/app.go", `package app

import "fixture/internal/util"

func Quad(x int) int { return util.Double(util.Double(x)) }
`)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if l.Module() != "fixture" {
		t.Fatalf("module: got %q", l.Module())
	}
	lp := l.Load("internal/app")
	if lp.Err != nil {
		t.Fatalf("Load: %v", lp.Err)
	}
	if lp.Pkg == nil || lp.Info == nil || len(lp.Files) != 1 {
		t.Fatalf("incomplete Loaded: %+v", lp)
	}
	if lp.PkgPath != "fixture/internal/app" {
		t.Fatalf("PkgPath: got %q", lp.PkgPath)
	}
	if again := l.Load("internal/app"); again != lp {
		t.Fatal("Load must memoize")
	}
}

// TestLoaderDegradesOnTypeError: a type error yields Loaded.Err, never a
// panic or a partial Info handed to analyzers.
func TestLoaderDegradesOnTypeError(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	mustWrite(t, root, "internal/bad/bad.go", `package bad

var x undefinedType
`)
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	lp := l.Load("internal/bad")
	if lp.Err == nil {
		t.Fatal("want type error")
	}
	if !strings.Contains(lp.Err.Error(), "undefined") {
		t.Fatalf("unexpected error: %v", lp.Err)
	}
	// AnalyzeTypedFiles on a failed package must run tier-2 analyzers as
	// a silent skip, not report garbage.
	if diags := AnalyzeTypedFiles(lp, l.Module(), []*Analyzer{DetFlow, EpsFlow}); len(diags) != 0 {
		t.Fatalf("failed package must produce no tier-2 findings, got %v", diags)
	}
}

// TestLoaderNoModLine: a go.mod without a module line fails loader
// construction (Run degrades by reporting the error, never guessing).
func TestLoaderNoModLine(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "// empty\n")
	if _, err := NewLoader(root); err == nil {
		t.Fatal("want error for missing module line")
	}
}

// TestLoaderEmptyDir: a directory with no buildable Go files (the
// test-only package case) degrades with Err set.
func TestLoaderEmptyDir(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	mustWrite(t, root, "internal/only/only_test.go", "package only\n")
	l, err := NewLoader(root)
	if err != nil {
		t.Fatalf("NewLoader: %v", err)
	}
	if lp := l.Load("internal/only"); lp.Err == nil {
		t.Fatal("test-only package must degrade with Err")
	}
}
