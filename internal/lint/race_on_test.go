//go:build race

package lint

// raceEnabled reports whether the race detector is compiled in; the
// tier-2 budget test skips under race, where the ~10x slowdown makes
// wall-clock assertions meaningless.
const raceEnabled = true
