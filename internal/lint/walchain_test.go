package lint

import "testing"

func TestWalChain(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		file string
		src  string
		want []string
	}{
		{
			name: "record literal with chain fields flagged per field",
			pkg:  "internal/service",
			src: `package service
import "repro/internal/wal"
var rec = wal.Record{Seq: 7, Prev: prev, Type: 1, Digest: d}
`,
			want: []string{"3:walchain", "3:walchain", "3:walchain"},
		},
		{
			name: "non-chain literal fields are fine",
			pkg:  "internal/service",
			src: `package service
import "repro/internal/wal"
var rec = wal.Record{Type: wal.TypeAccepted, Job: 4, Tenant: "t"}
`,
			want: nil,
		},
		{
			name: "assignment to chain field flagged",
			pkg:  "cmd/reprod",
			src: `package main
import "repro/internal/wal"
func fix(rec *wal.Record) {
	rec.Seq = rec.Seq + 1
	rec.Prev = rec.Digest
}
`,
			want: []string{"4:walchain", "5:walchain"},
		},
		{
			name: "increment of chain field flagged",
			pkg:  "internal/service",
			src: `package service
import "repro/internal/wal"
func bump(rec *wal.Record) {
	rec.Seq++
}
`,
			want: []string{"4:walchain"},
		},
		{
			name: "renamed import still caught",
			pkg:  "internal/service",
			src: `package service
import journal "repro/internal/wal"
var rec = journal.Record{Digest: d}
`,
			want: []string{"3:walchain"},
		},
		{
			name: "internal/wal owns the chain",
			pkg:  "internal/wal",
			src: `package wal
func (j *Journal) assign(rec *Record) {
	rec.Seq = j.seq + 1
	rec.Prev = j.head
}
`,
			want: nil,
		},
		{
			name: "test files may forge chains",
			pkg:  "internal/chaos",
			file: "tamper_test.go",
			src: `package chaos
import "repro/internal/wal"
func forge() wal.Record { return wal.Record{Seq: 99} }
`,
			want: []string{},
		},
		{
			name: "file without the wal import is out of scope",
			pkg:  "internal/shard",
			src: `package shard
type VerdictMsg struct{ Seq int64 }
func f(v *VerdictMsg) { v.Seq = 3 }
`,
			want: nil,
		},
		{
			name: "unrelated package named wal not matched",
			pkg:  "internal/other",
			src: `package other
import wal "example.com/wal"
var rec = wal.Record{Seq: 1}
`,
			want: nil,
		},
		{
			name: "reading chain fields is fine",
			pkg:  "cmd/reprocmp",
			src: `package main
import "repro/internal/wal"
func head(recs []wal.Record) uint64 { return recs[len(recs)-1].Seq }
`,
			want: nil,
		},
		{
			name: "suppression honored",
			pkg:  "internal/service",
			src: `package service
import "repro/internal/wal"
//lint:ignore walchain reviewed: migration shim rebuilds a legacy chain
var rec = wal.Record{Seq: 1}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := tc.file
			if file == "" {
				file = "fixture.go"
			}
			got := runSourceNamed(t, WalChain, tc.pkg, file, tc.src)
			expectDiags(t, got, tc.want...)
		})
	}
}
