package lint

import (
	"go/ast"
	"go/types"
)

// DetFlow is the tier-2 determinism-taint rule. Where tier-1 maphash
// flags a map range whose body visibly writes to a hasher, detflow
// follows the value: a map-ordered key appended to a slice, returned
// from a helper, and only then fed to a chained digest two calls later
// is the same bug, and the syntactic rule cannot see it. The engine in
// taint.go propagates nondeterminism facts (map iteration order,
// wall-clock reads, unseeded math/rand, goroutine completion order,
// directory listings) through assignments, channels, returns and
// intra-package call edges; detflow supplies the source and sink tables
// and reports each surviving source→sink chain with its full path.
//
// Sinks are the places where a value becomes part of the reproducibility
// contract: chained Murmur3F digest inputs, ε-quantized hash inputs,
// merkle leaf sets, run-catalog records, JSON-encoded artifacts, and
// writes to any hash.Hash implementation. Sorting launders the
// order-sensitive taints (map order, goroutine order, directory order)
// but not the value taints (clock, rand): a sorted slice of timestamps
// is still nondeterministic.
var DetFlow = &Analyzer{
	Name:     "detflow",
	Doc:      "nondeterministic value (map order, wall clock, rand, goroutine order, dir listing) flows into a digest or recorded artifact",
	Severity: SeverityError,
	Tier:     2,
	Run:      runDetFlow,
}

// detFlowExempt lists packages allowed to feed their own primitives: the
// hashing and ε-bound machinery is where digests are implemented, not
// consumed.
var detFlowExempt = []string{"internal/murmur3", "internal/errbound"}

func runDetFlow(p *Pass) {
	if pkgIn(p.Pkg, detFlowExempt...) {
		return
	}
	runTaint(p, &taintSpec{
		mapRange:      true,
		goroutineRecv: true,
		sortSanitizes: true,
		callSources:   detFlowSources,
		sinks:         detFlowSinks,
	})
}

// detFlowSeededRand lists math/rand constructors that take an explicit
// seed (or wrap an explicitly seeded source): calling them is the fix,
// not the bug.
var detFlowSeededRand = map[string]bool{
	"New": true, "NewSource": true, "NewZipf": true, "Seed": true,
}

// detFlowSources maps calls to the taints they introduce.
func detFlowSources(e *taintEngine, call *ast.CallExpr, callee *types.Func) []fact {
	if callee == nil {
		return nil
	}
	src := func(kind taintKind, note string) []fact {
		return []fact{{kind: kind, path: []flowStep{{pos: call.Pos(), note: note}}}}
	}
	switch funcFullName(callee, e.pass.Module) {
	case "time.Now":
		return src(taintWallClock, "time.Now() reads the wall clock")
	case "time.Since", "time.Until":
		return src(taintWallClock, "time."+callee.Name()+"() reads the wall clock")
	case "os.ReadDir", "(*os.File).ReadDir", "(*os.File).Readdir", "(*os.File).Readdirnames":
		return src(taintReadDir, "directory listing varies with the host filesystem")
	}
	if pkg := callee.Pkg(); pkg != nil && pkg.Path() == "math/rand" {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() == nil && !detFlowSeededRand[callee.Name()] {
			return src(taintRand, "math/rand."+callee.Name()+"() draws from the auto-seeded global source")
		}
	}
	return nil
}

// detFlowSinkTable maps module-stripped qualified names to the sink
// arguments they expose. Argument indices exclude the receiver.
var detFlowSinkTable = map[string][]sinkArg{
	// Chained Murmur3F digests: order-sensitive by construction.
	"(*internal/murmur3.Chain).Block":     {{arg: 0, desc: "chained digest block"}, {arg: 1, desc: "chained digest block"}},
	"(*internal/murmur3.Chain).BlockTail": {{arg: 0, desc: "chained digest block"}},
	"internal/murmur3.SumDigest":          {{arg: 0, desc: "digest input"}},
	"internal/murmur3.Sum128":             {{arg: 0, desc: "digest input"}},
	"internal/murmur3.Sum128Seeded":       {{arg: 0, desc: "digest input"}},
	// ε-quantized hashing.
	"(*internal/errbound.Hasher).HashChunk":           {{arg: 0, desc: "ε-quantized digest input"}},
	"(*internal/errbound.Hasher).HashChunkScratch":    {{arg: 0, desc: "ε-quantized digest input"}},
	"(*internal/errbound.TruncationHasher).HashChunk": {{arg: 0, desc: "ε-quantized digest input"}},
	// Merkle leaf sets: leaf order is the tree shape.
	"internal/merkle.New": {{arg: 2, desc: "merkle leaf set"}},
	// Run-catalog records.
	"internal/catalog.Save":               {{arg: 1, desc: "run-catalog record"}},
	"(*internal/catalog.Manifest).SetApp": {{arg: 1, desc: "run-catalog record"}},
	// Encoded artifacts: anything JSON-encoded is, in this tree, a
	// persisted or compared record.
	"encoding/json.Marshal":           {{arg: 0, desc: "encoded record"}},
	"encoding/json.MarshalIndent":     {{arg: 0, desc: "encoded record"}},
	"(*encoding/json.Encoder).Encode": {{arg: 0, desc: "encoded record"}},
}

// detFlowSinks maps calls to the sink arguments they expose: the static
// table first, then any Write on a hash.Hash implementation — concrete
// receivers via the callee's signature, interface receivers (hash.Hash,
// hash.Hash64, ...) via the selection, since dynamic dispatch has no
// static callee.
func detFlowSinks(e *taintEngine, call *ast.CallExpr, callee *types.Func) []sinkArg {
	if callee == nil {
		if sel, ok := ast.Unparen(call.Fun).(*ast.SelectorExpr); ok && sel.Sel.Name == "Write" {
			if s, ok := e.info.Selections[sel]; ok && s.Kind() == types.MethodVal && types.IsInterface(s.Recv()) {
				if iface := stdInterface("hash", "Hash"); iface != nil && types.Implements(s.Recv(), iface) {
					return []sinkArg{{arg: 0, desc: "hash state"}}
				}
			}
		}
		return nil
	}
	if sinks, ok := detFlowSinkTable[funcFullName(callee, e.pass.Module)]; ok {
		return sinks
	}
	if callee.Name() == "Write" {
		if sig, ok := callee.Type().(*types.Signature); ok && sig.Recv() != nil {
			if iface := stdInterface("hash", "Hash"); iface != nil {
				if types.Implements(sig.Recv().Type(), iface) {
					return []sinkArg{{arg: 0, desc: "hash state"}}
				}
			}
		}
	}
	return nil
}
