package lint

import (
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// EpsFlow is the tier-2 ε-flow rule: a type-aware complement to the
// syntactic floatcmp. Tier 1 can only flag a raw float comparison when
// the float-ness is visible in the function's own syntax (a declared
// float variable, a float literal, a math call). EpsFlow uses go/types
// to catch the escapes:
//
//   - comparisons whose operands are float-typed through a struct field,
//     a named type (type Temp float64), a cross-package call result, or
//     any other channel the syntactic scope cannot see;
//   - float-typed switch tags, whose case dispatch is a chain of exact
//     == comparisons;
//   - generic helpers (func eq[T comparable](a, b T) bool { return
//     a == b }) instantiated with a float type argument — reported at
//     the call site, with a path step pointing into the helper's
//     comparison, since the helper itself is fine for non-float T.
//
// Findings tier-1 floatcmp already reports are skipped here, so each
// raw comparison is flagged exactly once. Comparisons of two constants
// are exempt (compile-time, exact by definition), and the literal-zero
// exemption for ordered operators mirrors floatcmp. Suppress with
// //lint:ignore epsflow <reason>; for generic helpers, one directive on
// the helper's comparison line covers every instantiation site.
var EpsFlow = &Analyzer{
	Name:     "epsflow",
	Doc:      "float-typed value reaches a comparison without passing through internal/errbound (type-aware; catches wrapper and generic escapes)",
	Severity: SeverityError,
	Tier:     2,
	Run:      runEpsFlow,
}

// tpCompare records one comparison on a type parameter inside a generic
// function: flagged only at call sites that instantiate the parameter
// with a float type.
type tpCompare struct {
	index int // type-parameter index in the function's signature
	pos   token.Pos
	op    token.Token
}

func runEpsFlow(p *Pass) {
	if pkgIn(p.Pkg, floatCmpExempt...) {
		return
	}
	info := p.TypesInfo

	generic := map[*types.Func][]tpCompare{}
	for _, f := range p.Files {
		forEachFunc(f, func(node ast.Node, body *ast.BlockStmt, sc *funcScope) {
			var fnObj *types.Func
			if fd, ok := node.(*ast.FuncDecl); ok {
				fnObj, _ = info.Defs[fd.Name].(*types.Func)
			}
			ast.Inspect(body, func(n ast.Node) bool {
				switch n := n.(type) {
				case *ast.BinaryExpr:
					epsCheckCompare(p, sc, fnObj, generic, n)
				case *ast.SwitchStmt:
					epsCheckSwitch(p, n)
				}
				return true
			})
		})
	}

	epsCheckInstantiations(p, generic)
}

// epsCheckCompare handles one binary comparison: direct report when an
// operand is float-typed (and tier 1 missed it), deferred record when an
// operand is a type parameter.
func epsCheckCompare(p *Pass, sc *funcScope, fnObj *types.Func, generic map[*types.Func][]tpCompare, be *ast.BinaryExpr) {
	if !isCompareOp(be.Op) {
		return
	}
	info := p.TypesInfo
	tX := typeOf(info, be.X)
	tY := typeOf(info, be.Y)

	// Type-parameter comparison inside a generic function: benign until
	// instantiated with a float argument, so record and defer.
	if fnObj != nil {
		if idx := typeParamIndex(fnObj, tX); idx < 0 {
			idx = typeParamIndex(fnObj, tY)
			if idx >= 0 {
				generic[fnObj] = append(generic[fnObj], tpCompare{index: idx, pos: be.OpPos, op: be.Op})
				return
			}
		} else {
			generic[fnObj] = append(generic[fnObj], tpCompare{index: idx, pos: be.OpPos, op: be.Op})
			return
		}
	}

	if !isFloatTyped(tX) && !isFloatTyped(tY) {
		return
	}
	// Tier-1 floatcmp already owns syntactically evident float
	// comparisons; reporting them here would double every finding.
	if sc.isFloatExpr(be.X) || sc.isFloatExpr(be.Y) {
		return
	}
	// Mirror floatcmp's exemptions: ordered comparison against literal
	// zero is an exact sign/emptiness test, and a comparison of two
	// constants is evaluated at compile time.
	if be.Op != token.EQL && be.Op != token.NEQ && (isZeroLit(be.X) || isZeroLit(be.Y)) {
		return
	}
	if isConstExpr(info, be.X) && isConstExpr(info, be.Y) {
		return
	}
	p.Reportf(be.OpPos, "raw float comparison %q on a value typed %s: route through errbound.Equal or an explicit ε", be.Op, describeFloatSide(tX, tY))
}

// epsCheckSwitch flags a float-typed switch tag with value cases: case
// dispatch is a chain of exact == comparisons.
func epsCheckSwitch(p *Pass, sw *ast.SwitchStmt) {
	if sw.Tag == nil || !isFloatTyped(typeOf(p.TypesInfo, sw.Tag)) {
		return
	}
	for _, clause := range sw.Body.List {
		if cc, ok := clause.(*ast.CaseClause); ok && len(cc.List) > 0 {
			p.Reportf(sw.Switch, "switch on a float-typed value dispatches by exact ==: compare through errbound or restructure")
			return
		}
	}
}

// epsCheckInstantiations reports generic type-parameter comparisons at
// every call site whose type argument is a float. Instances is a map, so
// sites are collected and sorted before reporting to keep output
// deterministic (the framework re-sorts diagnostics, but path contents
// must not depend on iteration order either).
func epsCheckInstantiations(p *Pass, generic map[*types.Func][]tpCompare) {
	if len(generic) == 0 {
		return
	}
	info := p.TypesInfo
	type site struct {
		id   *ast.Ident
		inst types.Instance
	}
	var sites []site
	for id, inst := range info.Instances {
		sites = append(sites, site{id: id, inst: inst})
	}
	sort.Slice(sites, func(i, j int) bool { return sites[i].id.Pos() < sites[j].id.Pos() })

	for _, s := range sites {
		fn, ok := info.Uses[s.id].(*types.Func)
		if !ok {
			continue
		}
		cmps := generic[fn]
		if len(cmps) == 0 || s.inst.TypeArgs == nil {
			continue
		}
		for _, cmp := range cmps {
			if cmp.index >= s.inst.TypeArgs.Len() {
				continue
			}
			arg := s.inst.TypeArgs.At(cmp.index)
			if !isFloatTyped(arg) {
				continue
			}
			path := []PathStep{
				p.Step(cmp.pos, "comparison %q on type parameter inside %s()", cmp.op, fn.Name()),
				p.Step(s.id.Pos(), "instantiated with %s", types.TypeString(arg, nil)),
			}
			p.ReportPath(s.id.Pos(), path, "generic %s() compares its type parameter with %q and is instantiated with %s here: raw float comparison", fn.Name(), cmp.op, types.TypeString(arg, nil))
		}
	}
}

// typeOf returns the static type of an expression, or nil.
func typeOf(info *types.Info, e ast.Expr) types.Type {
	tv, ok := info.Types[e]
	if !ok {
		return nil
	}
	return tv.Type
}

// isFloatTyped reports whether t's underlying type is float32/float64.
func isFloatTyped(t types.Type) bool {
	if t == nil {
		return false
	}
	basic, ok := t.Underlying().(*types.Basic)
	return ok && basic.Info()&types.IsFloat != 0
}

// typeParamIndex returns the index of t among fn's type parameters, or
// -1 when t is not one of them.
func typeParamIndex(fn *types.Func, t types.Type) int {
	tp, ok := t.(*types.TypeParam)
	if !ok {
		return -1
	}
	sig, ok := fn.Type().(*types.Signature)
	if !ok || sig.TypeParams() == nil {
		return -1
	}
	for i := 0; i < sig.TypeParams().Len(); i++ {
		if sig.TypeParams().At(i) == tp {
			return i
		}
	}
	return -1
}

// isConstExpr reports whether the expression is a compile-time constant.
func isConstExpr(info *types.Info, e ast.Expr) bool {
	tv, ok := info.Types[e]
	return ok && tv.Value != nil
}

// describeFloatSide names the float-typed operand's type for the
// message, preferring the left operand.
func describeFloatSide(tX, tY types.Type) string {
	if isFloatTyped(tX) {
		return types.TypeString(tX, nil)
	}
	return types.TypeString(tY, nil)
}
