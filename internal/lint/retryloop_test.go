package lint

import "testing"

func TestRetryloop(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "sleep inside a loop flagged",
			pkg:  "internal/stream",
			src: `package stream
import "time"
func poll() {
	for {
		time.Sleep(10 * time.Millisecond)
	}
}
`,
			want: []string{"5:retryloop"},
		},
		{
			name: "sleep inside a range loop flagged",
			pkg:  "internal/compare",
			src: `package compare
import "time"
func drain(ch chan int) {
	for range ch {
		time.Sleep(time.Second)
	}
}
`,
			want: []string{"5:retryloop"},
		},
		{
			name: "sleep outside any loop allowed",
			pkg:  "internal/stream",
			src: `package stream
import "time"
func settle() {
	time.Sleep(time.Millisecond)
}
`,
			want: nil,
		},
		{
			name: "hand-rolled attempt loop flagged",
			pkg:  "internal/pfs",
			src: `package pfs
func open(f func() error) error {
	var err error
	for attempt := 0; attempt < 3; attempt++ {
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}
`,
			want: []string{"4:retryloop"},
		},
		{
			name: "retries condition variable flagged",
			pkg:  "internal/aio",
			src: `package aio
func submit(f func() bool, maxRetries int) {
	for i := 0; i < maxRetries; i++ {
		if f() {
			return
		}
	}
}
`,
			want: []string{"3:retryloop"},
		},
		{
			name: "attempt loop consulting Policy.Next allowed",
			pkg:  "internal/engine",
			src: `package engine
func step(p Policy, f func() error) error {
	for attempt := 0; ; attempt++ {
		err := f()
		if err == nil {
			return nil
		}
		if _, ok := p.Retry.Next(attempt + 1); !ok {
			return err
		}
	}
}
`,
			want: nil,
		},
		{
			name: "attempt bookkeeping via Policy.Do allowed",
			pkg:  "internal/compare",
			src: `package compare
func read(pol Policy, f func(int) error) {
	for attempts := 0; attempts == 0; attempts++ {
		pol.Do(nil, f)
	}
}
`,
			want: nil,
		},
		{
			name: "plain index loop allowed",
			pkg:  "internal/compare",
			src: `package compare
func sum(xs []int) int {
	t := 0
	for i := 0; i < len(xs); i++ {
		t += xs[i]
	}
	return t
}
`,
			want: nil,
		},
		{
			name: "internal/retry may own the math",
			pkg:  "internal/retry",
			src: `package retry
import "time"
func spin(f func() error) {
	for attempt := 0; attempt < 3; attempt++ {
		time.Sleep(time.Millisecond)
	}
}
`,
			want: nil,
		},
		{
			name: "non-internal packages out of scope",
			pkg:  "cmd/reprocmp",
			src: `package main
func wait(f func() bool) {
	for retries := 0; retries < 5; retries++ {
		if f() {
			return
		}
	}
}
`,
			want: nil,
		},
		{
			name: "suppression comment honored",
			pkg:  "internal/pfs",
			src: `package pfs
func open(f func() error) error {
	var err error
	//lint:ignore retryloop bounded bootstrap probe, not a retry
	for attempt := 0; attempt < 2; attempt++ {
		if err = f(); err == nil {
			return nil
		}
	}
	return err
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, Retryloop, tc.pkg, tc.src), tc.want...)
		})
	}
}
