package lint

import (
	"fmt"
	"go/ast"
	"go/format"
	"go/parser"
	"go/token"
	"os"
	"sort"
	"strconv"
)

// This file implements `reprovet -fix`: mechanical, idempotent rewrites
// for the two rules whose canonical fix is a one-statement substitution.
//
//   - errclose: a dropped `x.Close()` (bare statement or defer) inside a
//     function with a named error result becomes
//     `safeclose.Do(x, &err)` — the checked-close helper that records
//     the error unless an earlier one already claimed the return.
//     Close only: Flush/Sync/Write failures usually need real handling,
//     not a deferred capture, so they stay manual.
//   - walltime: `time.Now()` becomes `simclock.Epoch()`, the fixed
//     deterministic stand-in. Since/Until imply interval arithmetic the
//     fix cannot guess at, so they stay manual too.
//
// Only diagnostics that survive suppression are fixed (an annotated site
// is a reviewed decision), and the fixer is driven by the analyzers
// themselves: a site is rewritten only if the rule actually flagged it.
// Rewrites are plain text edits at token offsets followed by import
// bookkeeping and gofmt, so the rest of the file keeps its exact shape.
// Running -fix twice is a no-op by construction: the rewritten forms no
// longer match either rule.

// FixResult reports the rewrites applied to one file.
type FixResult struct {
	File    string
	Applied int
	// Skipped counts flagged sites the fixer declined (e.g. a dropped
	// Close in a function without a named error result to capture into).
	Skipped int
}

// fixRules are the analyzers -fix knows how to rewrite.
var fixRules = []*Analyzer{ErrClose, WallTime}

// Fix runs the fixable analyzers over the tree and rewrites every
// surviving finding it has a mechanical fix for, in place. It returns
// per-file results for files with at least one applied or skipped site.
func Fix(cfg Config, patterns ...string) ([]FixResult, error) {
	if cfg.Root == "" {
		cfg.Root = "."
	}
	cfg.Analyzers = fixRules
	cfg.Tier = 1
	diags, err := Run(cfg, patterns...)
	if err != nil {
		return nil, err
	}
	module, err := modulePath(cfg.Root)
	if err != nil {
		return nil, err
	}
	byFile := map[string][]Diagnostic{}
	for _, d := range diags {
		byFile[d.File] = append(byFile[d.File], d)
	}
	paths := make([]string, 0, len(byFile))
	for p := range byFile {
		paths = append(paths, p)
	}
	sort.Strings(paths)

	var out []FixResult
	for _, path := range paths {
		src, err := os.ReadFile(path)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		fixed, applied, skipped, err := FixSource(src, byFile[path], module)
		if err != nil {
			return nil, fmt.Errorf("lint: fix %s: %w", path, err)
		}
		if applied > 0 {
			info, err := os.Stat(path)
			if err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
			if err := os.WriteFile(path, fixed, info.Mode().Perm()); err != nil {
				return nil, fmt.Errorf("lint: %w", err)
			}
		}
		if applied > 0 || skipped > 0 {
			out = append(out, FixResult{File: path, Applied: applied, Skipped: skipped})
		}
	}
	return out, nil
}

// edit is one pending text replacement at byte offsets into the source.
type edit struct {
	start, end int
	text       string
}

// FixSource rewrites one file's source given the diagnostics reported
// against it. It returns the new source and the applied/skipped counts;
// src is returned unchanged when nothing applies. Exported (rather than
// only reachable through Fix) so fixtures can exercise the rewrite logic
// on synthetic sources without a module tree.
func FixSource(src []byte, diags []Diagnostic, module string) ([]byte, int, int, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		return nil, 0, 0, err
	}

	// Index the diagnostic anchors by position so the walk below fixes
	// exactly the flagged sites and nothing else.
	type anchor struct{ line, col int }
	flagged := map[string]map[anchor]bool{}
	for _, d := range diags {
		if flagged[d.Rule] == nil {
			flagged[d.Rule] = map[anchor]bool{}
		}
		flagged[d.Rule][anchor{d.Line, d.Col}] = true
	}
	at := func(rule string, pos token.Pos) bool {
		p := fset.Position(pos)
		return flagged[rule][anchor{p.Line, p.Column}]
	}
	offset := func(pos token.Pos) int { return fset.Position(pos).Offset }
	text := func(n ast.Node) string { return string(src[offset(n.Pos()):offset(n.End())]) }

	var edits []edit
	applied, skipped := 0, 0
	needSafeclose, needSimclock := false, false

	// closeRewrite builds the replacement for a flagged x.Close() inside
	// a function whose named error result is errName.
	closeRewrite := func(call *ast.CallExpr, errName string) string {
		sel := call.Fun.(*ast.SelectorExpr)
		return fmt.Sprintf("safeclose.Do(%s, &%s)", text(sel.X), errName)
	}

	var stack []ast.Node
	ast.Inspect(f, func(n ast.Node) bool {
		if n == nil {
			stack = stack[:len(stack)-1]
			return true
		}
		stack = append(stack, n)
		switch n := n.(type) {
		case *ast.ExprStmt:
			if call := fixableClose(n.X); call != nil && at("errclose", n.Pos()) {
				if errName := namedErrResult(stack); errName != "" {
					edits = append(edits, edit{offset(n.Pos()), offset(n.End()), closeRewrite(call, errName)})
					needSafeclose = true
					applied++
				} else {
					skipped++
				}
			}
		case *ast.DeferStmt:
			if call := fixableClose(n.Call); call != nil && at("errclose", n.Pos()) {
				if errName := namedErrResult(stack); errName != "" {
					edits = append(edits, edit{offset(n.Call.Pos()), offset(n.Call.End()), closeRewrite(call, errName)})
					needSafeclose = true
					applied++
				} else {
					skipped++
				}
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok && len(n.Args) == 0 {
				if x, ok := sel.X.(*ast.Ident); ok && x.Name == "time" && sel.Sel.Name == "Now" && at("walltime", sel.Pos()) {
					edits = append(edits, edit{offset(n.Pos()), offset(n.End()), "simclock.Epoch()"})
					needSimclock = true
					applied++
				}
			}
		}
		return true
	})

	if applied == 0 {
		return src, 0, skipped, nil
	}
	fixed := applyEdits(src, edits)
	fixed, err = fixImports(fixed, module, needSafeclose, needSimclock)
	if err != nil {
		return nil, 0, 0, err
	}
	return fixed, applied, skipped, nil
}

// fixableClose returns the call when e is `x.Close()` with no arguments
// — the only errclose shape with a mechanical fix.
func fixableClose(e ast.Expr) *ast.CallExpr {
	call, ok := e.(*ast.CallExpr)
	if !ok || len(call.Args) != 0 {
		return nil
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Close" {
		return nil
	}
	return call
}

// namedErrResult scans the node stack for the innermost enclosing
// function and returns the name of its named error result, or "".
func namedErrResult(stack []ast.Node) string {
	for i := len(stack) - 1; i >= 0; i-- {
		var ft *ast.FuncType
		switch n := stack[i].(type) {
		case *ast.FuncDecl:
			ft = n.Type
		case *ast.FuncLit:
			ft = n.Type
		default:
			continue
		}
		if ft.Results == nil {
			return ""
		}
		for _, field := range ft.Results.List {
			id, ok := field.Type.(*ast.Ident)
			if !ok || id.Name != "error" {
				continue
			}
			for _, name := range field.Names {
				if name.Name != "_" {
					return name.Name
				}
			}
		}
		return ""
	}
	return ""
}

// applyEdits replaces the edit ranges, applying from the end of the file
// backward so earlier offsets stay valid.
func applyEdits(src []byte, edits []edit) []byte {
	sort.Slice(edits, func(i, j int) bool { return edits[i].start > edits[j].start })
	out := src
	for _, e := range edits {
		var buf []byte
		buf = append(buf, out[:e.start]...)
		buf = append(buf, e.text...)
		buf = append(buf, out[e.end:]...)
		out = buf
	}
	return out
}

// fixImports adds the helper imports the rewrites introduced, removes a
// now-unused "time" import, and formats the result.
func fixImports(src []byte, module string, needSafeclose, needSimclock bool) ([]byte, error) {
	var want []string
	if needSafeclose {
		want = append(want, module+"/internal/safeclose")
	}
	if needSimclock {
		want = append(want, module+"/internal/simclock")
	}
	for _, path := range want {
		var err error
		src, err = addImport(src, path)
		if err != nil {
			return nil, err
		}
	}
	src, err := dropUnusedTimeImport(src)
	if err != nil {
		return nil, err
	}
	return format.Source(src)
}

// addImport inserts an import of path unless already present.
func addImport(src []byte, path string) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	for _, imp := range f.Imports {
		if imp.Path.Value == strconv.Quote(path) {
			return src, nil
		}
	}
	offset := func(pos token.Pos) int { return fset.Position(pos).Offset }
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		if gd.Lparen.IsValid() {
			// Parenthesized block: append as its own group (module
			// imports sit below the standard library, per the tree's
			// style) so gofmt sorts within groups rather than mixing.
			ins := offset(gd.Rparen)
			return spliceBytes(src, ins, ins, fmt.Sprintf("\n\t%q\n", path)), nil
		}
		// Single import: wrap it into a block.
		spec := gd.Specs[0].(*ast.ImportSpec)
		repl := fmt.Sprintf("import (\n\t%s\n\n\t%q\n)", string(src[offset(spec.Pos()):offset(spec.End())]), path)
		return spliceBytes(src, offset(gd.Pos()), offset(gd.End()), repl), nil
	}
	// No import declaration: add one after the package clause.
	ins := offset(f.Name.End())
	return spliceBytes(src, ins, ins, fmt.Sprintf("\n\nimport %q", path)), nil
}

// dropUnusedTimeImport removes the "time" import when no time.X
// reference remains (the walltime rewrite often strips the last one).
func dropUnusedTimeImport(src []byte) ([]byte, error) {
	fset := token.NewFileSet()
	f, err := parser.ParseFile(fset, "fix.go", src, parser.ParseComments)
	if err != nil {
		return nil, err
	}
	used := false
	ast.Inspect(f, func(n ast.Node) bool {
		if sel, ok := n.(*ast.SelectorExpr); ok {
			if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
				used = true
				return false
			}
		}
		return true
	})
	if used {
		return src, nil
	}
	offset := func(pos token.Pos) int { return fset.Position(pos).Offset }
	for _, decl := range f.Decls {
		gd, ok := decl.(*ast.GenDecl)
		if !ok || gd.Tok != token.IMPORT {
			continue
		}
		for _, spec := range gd.Specs {
			imp := spec.(*ast.ImportSpec)
			if imp.Path.Value != `"time"` || imp.Name != nil {
				continue
			}
			if len(gd.Specs) == 1 && !gd.Lparen.IsValid() {
				// Sole unparenthesized import: drop the whole decl.
				return spliceBytes(src, offset(gd.Pos()), offset(gd.End()), ""), nil
			}
			// Drop the spec's line inside the block; gofmt cleans up an
			// empty block if this was the last spec.
			start := offset(imp.Pos())
			end := offset(imp.End())
			for end < len(src) && src[end] != '\n' {
				end++
			}
			if end < len(src) {
				end++
			}
			return spliceBytes(src, start, end, ""), nil
		}
	}
	return src, nil
}

// spliceBytes replaces src[start:end] with text.
func spliceBytes(src []byte, start, end int, text string) []byte {
	var out []byte
	out = append(out, src[:start]...)
	out = append(out, text...)
	out = append(out, src[end:]...)
	return out
}
