package lint

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var updateGolden = flag.Bool("update", false, "rewrite golden files")

// TestToSARIFGolden locks the SARIF shape against a golden file: the
// format is an interchange contract, so any drift must be a reviewed
// diff, not an accident. Regenerate with `go test -run SARIFGolden
// -update ./internal/lint/`.
func TestToSARIFGolden(t *testing.T) {
	diags := []Diagnostic{
		{
			File: "/repo/internal/compare/cmp.go", Line: 42, Col: 7,
			Rule: "floatcmp", Severity: "error",
			Message: `raw float comparison "==": route through errbound.Equal or an explicit ε`,
		},
		{
			File: "/repo/internal/catalog/save.go", Line: 10, Col: 3,
			Rule: "detflow", Severity: "error",
			Message: "map iteration order flows into run-catalog record; the recorded result depends on runtime state, not run inputs",
			Path: []PathStep{
				{File: "/repo/internal/catalog/save.go", Line: 5, Col: 2, Note: "map iterated in randomized order"},
				{File: "/repo/internal/catalog/save.go", Line: 10, Col: 3, Note: "reaches run-catalog record"},
			},
		},
		{
			File: "/repo/cmd/tool/main.go", Line: 3, Col: 1,
			Rule: "gocheck", Severity: "warning",
			Message: "goroutine launched without a join",
		},
	}
	got, err := ToSARIF(diags, "/repo")
	if err != nil {
		t.Fatalf("ToSARIF: %v", err)
	}
	got = append(got, '\n')

	golden := filepath.Join("testdata", "sarif.golden")
	if *updateGolden {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(golden, got, 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("read golden (run with -update to create): %v", err)
	}
	if string(got) != string(want) {
		t.Fatalf("SARIF output drifted from golden file:\n--- got ---\n%s\n--- want ---\n%s", got, want)
	}
}

// TestToSARIFIsValidJSONAndRelativizes sanity-checks structure beyond
// the golden bytes: parseable, correct version, relative URIs, related
// locations only where a path exists.
func TestToSARIFIsValidJSONAndRelativizes(t *testing.T) {
	diags := []Diagnostic{{
		File: "/r/a.go", Line: 1, Col: 1, Rule: "floatcmp", Severity: "error", Message: "m",
	}}
	out, err := ToSARIF(diags, "/r")
	if err != nil {
		t.Fatal(err)
	}
	var log struct {
		Version string `json:"version"`
		Runs    []struct {
			Results []struct {
				Locations []struct {
					PhysicalLocation struct {
						ArtifactLocation struct {
							URI string `json:"uri"`
						} `json:"artifactLocation"`
					} `json:"physicalLocation"`
				} `json:"locations"`
				RelatedLocations []any `json:"relatedLocations"`
			} `json:"results"`
		} `json:"runs"`
	}
	if err := json.Unmarshal(out, &log); err != nil {
		t.Fatalf("not valid JSON: %v", err)
	}
	if log.Version != "2.1.0" {
		t.Fatalf("version: %s", log.Version)
	}
	res := log.Runs[0].Results[0]
	if uri := res.Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "a.go" {
		t.Fatalf("uri not relativized: %q", uri)
	}
	if len(res.RelatedLocations) != 0 {
		t.Fatalf("pathless diagnostic must have no relatedLocations")
	}
	// A file outside root keeps its absolute (slashified) path.
	out2, err := ToSARIF([]Diagnostic{{File: "/elsewhere/b.go", Line: 1, Col: 1, Rule: "x", Severity: "error", Message: "m"}}, "/r")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.Unmarshal(out2, &log); err != nil {
		t.Fatal(err)
	}
	if uri := log.Runs[0].Results[0].Locations[0].PhysicalLocation.ArtifactLocation.URI; uri != "/elsewhere/b.go" {
		t.Fatalf("outside-root uri: %q", uri)
	}
}
