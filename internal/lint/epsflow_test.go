package lint

import "testing"

// epsFiles wraps one app source file into the fixture layout.
func epsFiles(src string) map[string]string {
	return map[string]string{"internal/app/app.go": src}
}

// TestEpsFlowTypedEscapes covers the comparisons tier-1 floatcmp cannot
// see: struct fields, named float types, and cross-function call
// results.
func TestEpsFlowTypedEscapes(t *testing.T) {
	files := epsFiles(`package app

type sample struct{ v float64 }

type temp float64

func load() float64 { return 1 }

func field(a, b sample) bool { return a.v == b.v }

func named(a, b temp) bool { return a < b }

func viaCall() bool { return load() == load() }
`)
	// Tier 1 sees none of these.
	expectDiags(t, runTier2(t, []*Analyzer{FloatCmp}, files))
	// Tier 2 sees all three.
	got := runTier2(t, []*Analyzer{EpsFlow}, files)
	expectDiags(t, got, "app.go:9:epsflow", "app.go:11:epsflow", "app.go:13:epsflow")
}

// TestEpsFlowDedupeAgainstFloatCmp: a comparison tier-1 floatcmp already
// reports must not be double-reported by epsflow.
func TestEpsFlowDedupeAgainstFloatCmp(t *testing.T) {
	files := epsFiles(`package app

func f(a, b float64) bool { return a == b }
`)
	expectDiags(t, runTier2(t, []*Analyzer{FloatCmp}, files), "app.go:3:floatcmp")
	expectDiags(t, runTier2(t, []*Analyzer{EpsFlow}, files))
	// Running both at tier 2 yields exactly one finding.
	both := runTier2(t, []*Analyzer{FloatCmp, EpsFlow}, files)
	expectDiags(t, both, "app.go:3:floatcmp")
}

// TestEpsFlowExemptions mirrors floatcmp's carve-outs at the type level:
// ordered comparison against literal zero, constant-only comparisons,
// and the errbound/murmur3 packages themselves.
func TestEpsFlowExemptions(t *testing.T) {
	files := epsFiles(`package app

type sample struct{ v float64 }

const eps = 1e-9
const tol = 1e-6

func signTest(s sample) bool { return s.v > 0 }

func constOnly() bool { return eps < tol }
`)
	expectDiags(t, runTier2(t, []*Analyzer{EpsFlow}, files))

	exempt := map[string]string{"internal/errbound/eb.go": `package errbound

type sample struct{ v float64 }

func eq(a, b sample) bool { return a.v == b.v }
`}
	expectDiags(t, runTier2(t, []*Analyzer{EpsFlow}, exempt))
}

// TestEpsFlowGenericInstantiation is the acceptance pair for epsflow: an
// equality helper behind a type parameter is fine for ints, flagged at
// every float call site, with a path step into the helper.
func TestEpsFlowGenericInstantiation(t *testing.T) {
	files := epsFiles(`package app

func eq[T comparable](a, b T) bool { return a == b }

func ints(a, b int) bool { return eq(a, b) }

func floats(a, b float64) bool { return eq(a, b) }
`)
	// Tier 1 cannot flag any of this: inside eq the operands are typed T.
	expectDiags(t, runTier2(t, []*Analyzer{FloatCmp}, files))
	got := runTier2(t, []*Analyzer{EpsFlow}, files)
	expectDiags(t, got, "app.go:7:epsflow")
}

// TestEpsFlowGenericSuppressionAtHelper: one directive on the helper's
// comparison line (the path source) silences all float call sites.
func TestEpsFlowGenericSuppressionAtHelper(t *testing.T) {
	files := epsFiles(`package app

//lint:ignore epsflow exact dispatch on quantized grid values
func eq[T comparable](a, b T) bool { return a == b }

func floatsA(a, b float64) bool { return eq(a, b) }

func floatsB(a, b float32) bool { return eq(a, b) }
`)
	expectDiags(t, runTier2(t, []*Analyzer{EpsFlow}, files))
}

// TestEpsFlowSwitchTag: switch on a float-typed value dispatches by
// exact ==.
func TestEpsFlowSwitchTag(t *testing.T) {
	files := epsFiles(`package app

func classify(v float64) string {
	switch v {
	case 1.5:
		return "x"
	default:
		return "y"
	}
}

func defaultOnly(v float64) string {
	switch v {
	default:
		return "y"
	}
}
`)
	got := runTier2(t, []*Analyzer{EpsFlow}, files)
	expectDiags(t, got, "app.go:4:epsflow")
}
