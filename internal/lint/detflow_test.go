package lint

import (
	"fmt"
	"path/filepath"
	"strings"
	"testing"
)

// runTier2 builds a temp module from files (path → content) and runs the
// given analyzers at tier 2, returning findings as "file:line:rule".
func runTier2(t *testing.T, analyzers []*Analyzer, files map[string]string) []string {
	t.Helper()
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	for rel, content := range files {
		mustWrite(t, root, rel, content)
	}
	diags, err := Run(Config{Root: root, Analyzers: analyzers, Tier: 2}, "./...")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	var out []string
	for _, d := range diags {
		out = append(out, fmt.Sprintf("%s:%d:%s", filepath.Base(d.File), d.Line, d.Rule))
	}
	return out
}

// stubMurmur3 is a module-local stand-in for internal/murmur3: the
// module-stripped qualified names match the real sink table, so fixtures
// exercise the same matching path the real tree does.
const stubMurmur3 = `package murmur3

type Digest [2]uint64

func SumDigest(data []byte, seed Digest) Digest { return seed }

type Chain struct{ d Digest }

func (c *Chain) Block(k1, k2 uint64) {}
`

// TestDetFlowInlineVsHelper is the acceptance fixture pair: the same
// map-order-into-digest bug written inline (tier 1 catches it) and
// laundered through an indexed copy plus a helper call (tier 1 provably
// cannot see it; tier 2 follows the value).
func TestDetFlowInlineVsHelper(t *testing.T) {
	files := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import "fixture/internal/murmur3"

func inline(m map[string][]byte) murmur3.Digest {
	var d murmur3.Digest
	for _, v := range m {
		d = murmur3.SumDigest(v, d)
	}
	return d
}

func viaHelper(m map[string][]byte) murmur3.Digest {
	out := make([][]byte, len(m))
	i := 0
	for _, v := range m {
		out[i] = v
		i++
	}
	return digestAll(out)
}

func digestAll(chunks [][]byte) murmur3.Digest {
	var d murmur3.Digest
	for _, c := range chunks {
		d = murmur3.SumDigest(c, d)
	}
	return d
}
`,
	}

	// Tier 1 alone: only the inline loop (line 7) is visible.
	tier1 := runTier2(t, []*Analyzer{MapHash}, files)
	expectDiags(t, tier1, "app.go:7:maphash")

	// Tier 2: the inline sink (line 8) and the laundered helper call
	// (line 20) are both flagged.
	tier2 := runTier2(t, []*Analyzer{DetFlow}, files)
	expectDiags(t, tier2, "app.go:8:detflow", "app.go:20:detflow")
}

// TestDetFlowTwoHops pushes a map-ordered value through two call edges:
// returned from one helper, passed into another that sinks it.
func TestDetFlowTwoHops(t *testing.T) {
	files := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import "fixture/internal/murmur3"

func firstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

func record(s string) murmur3.Digest {
	return murmur3.SumDigest([]byte(s), murmur3.Digest{})
}

func twoHops(m map[string]int) murmur3.Digest {
	return record(firstKey(m))
}
`,
	}
	got := runTier2(t, []*Analyzer{DetFlow}, files)
	expectDiags(t, got, "app.go:17:detflow")
}

// TestDetFlowPathContents checks the reported source→sink trail: the
// first step must sit at the nondeterminism source, the last at the
// sink, so suppression-at-source and SARIF relatedLocations have real
// positions to anchor to.
func TestDetFlowPathContents(t *testing.T) {
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	mustWrite(t, root, "internal/murmur3/murmur3.go", stubMurmur3)
	mustWrite(t, root, "internal/app/app.go", `package app

import "fixture/internal/murmur3"

func firstKey(m map[string]int) string {
	for k := range m {
		return k
	}
	return ""
}

func digest(m map[string]int) murmur3.Digest {
	return murmur3.SumDigest([]byte(firstKey(m)), murmur3.Digest{})
}
`)
	diags, err := Run(Config{Root: root, Analyzers: []*Analyzer{DetFlow}, Tier: 2}, "./...")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	if len(diags) != 1 {
		t.Fatalf("want 1 finding, got %v", diags)
	}
	path := diags[0].Path
	if len(path) < 2 {
		t.Fatalf("want a multi-step path, got %v", path)
	}
	if path[0].Line != 6 || !strings.Contains(path[0].Note, "map") {
		t.Fatalf("path[0] should be the map-range source at line 6, got %+v", path[0])
	}
	last := path[len(path)-1]
	if last.Line != 13 {
		t.Fatalf("last step should be at the sink line 13, got %+v", last)
	}
}

// TestDetFlowSuppression checks both suppression points: a directive at
// the sink line and a directive at the source line (which must silence
// every sink the source reaches, via Path[0]).
func TestDetFlowSuppression(t *testing.T) {
	atSink := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import "fixture/internal/murmur3"

func f(m map[string][]byte) murmur3.Digest {
	var d murmur3.Digest
	for _, v := range m {
		//lint:ignore detflow commutative by construction
		d = murmur3.SumDigest(v, d)
	}
	return d
}
`,
	}
	expectDiags(t, runTier2(t, []*Analyzer{DetFlow}, atSink))

	atSource := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import "fixture/internal/murmur3"

func firstKey(m map[string]int) string {
	//lint:ignore detflow any key is acceptable here
	for k := range m {
		return k
	}
	return ""
}

func digestA(m map[string]int) murmur3.Digest {
	return murmur3.SumDigest([]byte(firstKey(m)), murmur3.Digest{})
}

func digestB(m map[string]int) murmur3.Digest {
	return murmur3.SumDigest([]byte(firstKey(m)), murmur3.Digest{})
}
`,
	}
	// One directive at the source silences both downstream sinks.
	expectDiags(t, runTier2(t, []*Analyzer{DetFlow}, atSource))
}

// TestDetFlowNoTypeInfoFallback: a package that fails to type-check gets
// a silent tier-2 skip while tier-1 rules still run on it.
func TestDetFlowNoTypeInfoFallback(t *testing.T) {
	files := map[string]string{
		"internal/app/app.go": `package app

var broken undefinedType

func f(a, b float64) bool { return a != b }

func g(m map[string][]byte, sink interface{ Write([]byte) (int, error) }) {
	for _, v := range m {
		sink.Write(v)
	}
	_ = broken
}
`,
	}
	// Tier 2 requested, type-check fails: detflow must stay silent...
	expectDiags(t, runTier2(t, []*Analyzer{DetFlow}, files))
	// ...while tier 1 still reports on the same package.
	got := runTier2(t, []*Analyzer{FloatCmp, MapHash}, files)
	expectDiags(t, got, "app.go:5:floatcmp", "app.go:8:maphash")
}

// TestDetFlowSortSanitizer: sorting launders order taints, both locally
// and when the callee sorts before sinking (summary carries the sorted
// flag); wall-clock taint survives sorting.
func TestDetFlowSortSanitizer(t *testing.T) {
	sortedLocal := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import (
	"sort"

	"fixture/internal/murmur3"
)

func f(m map[string]int) murmur3.Digest {
	keys := make([]string, 0, len(m))
	for k := range m {
		keys = append(keys, k)
	}
	sort.Strings(keys)
	var d murmur3.Digest
	for _, k := range keys {
		d = murmur3.SumDigest([]byte(k), d)
	}
	return d
}
`,
	}
	expectDiags(t, runTier2(t, []*Analyzer{DetFlow}, sortedLocal))

	sortedInHelper := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import (
	"sort"

	"fixture/internal/murmur3"
)

func digestSorted(keys []string) murmur3.Digest {
	sort.Strings(keys)
	var d murmur3.Digest
	for _, k := range keys {
		d = murmur3.SumDigest([]byte(k), d)
	}
	return d
}

func f(m map[string]int) murmur3.Digest {
	out := make([]string, 0, len(m))
	for k := range m {
		out = append(out, k)
	}
	return digestSorted(out)
}
`,
	}
	expectDiags(t, runTier2(t, []*Analyzer{DetFlow}, sortedInHelper))

	// Sorting does not launder value nondeterminism: a sorted slice of
	// wall-clock samples is still wall-clock data.
	sortedClock := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import (
	"sort"
	"time"

	"fixture/internal/murmur3"
)

func f() murmur3.Digest {
	stamps := []string{time.Now().String()}
	sort.Strings(stamps)
	return murmur3.SumDigest([]byte(stamps[0]), murmur3.Digest{})
}
`,
	}
	got := runTier2(t, []*Analyzer{DetFlow}, sortedClock)
	expectDiags(t, got, "app.go:13:detflow")
}

// TestDetFlowValueSources covers the call-based sources: wall clock,
// unseeded math/rand (seeded rand must stay clean), and os.ReadDir.
func TestDetFlowValueSources(t *testing.T) {
	files := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import (
	"math/rand"
	"os"
	"time"

	"fixture/internal/murmur3"
)

func clock() murmur3.Digest {
	n := time.Now().UnixNano()
	return murmur3.SumDigest([]byte{byte(n)}, murmur3.Digest{})
}

func unseeded() murmur3.Digest {
	return murmur3.SumDigest([]byte{byte(rand.Int())}, murmur3.Digest{})
}

func seeded(seed int64) murmur3.Digest {
	r := rand.New(rand.NewSource(seed))
	return murmur3.SumDigest([]byte{byte(r.Int())}, murmur3.Digest{})
}

func listing(dir string) murmur3.Digest {
	entries, _ := os.ReadDir(dir)
	name := ""
	if len(entries) > 0 {
		name = entries[0].Name()
	}
	return murmur3.SumDigest([]byte(name), murmur3.Digest{})
}
`,
	}
	got := runTier2(t, []*Analyzer{DetFlow}, files)
	expectDiags(t, got, "app.go:13:detflow", "app.go:17:detflow", "app.go:31:detflow")
}

// TestDetFlowGoroutineFanIn: results received from loop-launched
// goroutines arrive in completion order; a single background goroutine
// with one send is deterministic enough to stay clean.
func TestDetFlowGoroutineFanIn(t *testing.T) {
	files := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import "fixture/internal/murmur3"

func fanIn(parts [][]byte) murmur3.Digest {
	ch := make(chan []byte)
	for _, p := range parts {
		p := p
		go func() { ch <- p }()
	}
	var d murmur3.Digest
	for range parts {
		d = murmur3.SumDigest(<-ch, d)
	}
	return d
}

func single(part []byte) murmur3.Digest {
	ch := make(chan []byte)
	go func() { ch <- part }()
	return murmur3.SumDigest(<-ch, murmur3.Digest{})
}
`,
	}
	got := runTier2(t, []*Analyzer{DetFlow}, files)
	expectDiags(t, got, "app.go:13:detflow")
}

// TestDetFlowCommutativeFold: an integer += fold over a map is
// order-insensitive and exact, so it must not taint; the same fold over
// floats rounds differently per order and must.
func TestDetFlowCommutativeFold(t *testing.T) {
	files := map[string]string{
		"internal/murmur3/murmur3.go": stubMurmur3,
		"internal/app/app.go": `package app

import "fixture/internal/murmur3"

func intFold(m map[string]int) murmur3.Digest {
	total := 0
	for _, v := range m {
		total += v
	}
	return murmur3.SumDigest([]byte{byte(total)}, murmur3.Digest{})
}

func floatFold(m map[string]float64) murmur3.Digest {
	total := 0.0
	for _, v := range m {
		total += v
	}
	return murmur3.SumDigest([]byte{byte(total)}, murmur3.Digest{})
}
`,
	}
	got := runTier2(t, []*Analyzer{DetFlow}, files)
	expectDiags(t, got, "app.go:18:detflow")
}

// TestDetFlowHashHashSink: a Write on any hash.Hash implementation is a
// sink even without an entry in the static table.
func TestDetFlowHashHashSink(t *testing.T) {
	files := map[string]string{
		"internal/app/app.go": `package app

import "hash/fnv"

func f(m map[string][]byte) uint64 {
	h := fnv.New64a()
	for _, v := range m {
		h.Write(v)
	}
	return h.Sum64()
}
`,
	}
	got := runTier2(t, []*Analyzer{DetFlow}, files)
	expectDiags(t, got, "app.go:8:detflow")
}
