package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "lint:ignore"

// directive is one parsed //lint:ignore comment: its position, the rules
// it names, and the free-form reason. A single comment naming several
// rules produces one directive (usage is tracked per comment, so a
// comma-list is live as long as any named rule still fires there).
type directive struct {
	file   string
	line   int
	rules  []string
	reason string
}

// suppressions indexes //lint:ignore directives by file and line and
// tracks which directives actually suppressed a finding.
type suppressions struct {
	// byLine maps a (file, line) key to the directives whose coverage
	// window (their own line and the line below) includes it.
	byLine map[suppressKey][]int
	// directives are the parsed comments, in file order.
	directives []directive
	// used[i] records that directive i suppressed at least one finding.
	used map[int]bool
}

type suppressKey struct {
	file string
	line int
}

// collectSuppressions scans the comment lists of the package's files for
// suppression directives. A directive written as
//
//	//lint:ignore rule1[,rule2] reason
//
// suppresses the named rules on the directive's own line (end-of-line
// comment) and on the line directly below it (comment above the flagged
// statement). A missing reason keeps the directive valid but is
// discouraged; the reason exists for reviewers, not the tool.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[suppressKey][]int{}, used: map[int]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				// The directive must sit flush against the comment marker
				// (//lint:ignore, no space): prose that merely mentions the
				// directive syntax is not a directive.
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSuffix(text, "*/")
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				var rules []string
				for _, rule := range strings.Split(fields[0], ",") {
					if rule = strings.TrimSpace(rule); rule != "" {
						rules = append(rules, rule)
					}
				}
				if len(rules) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				idx := len(s.directives)
				s.directives = append(s.directives, directive{
					file:   pos.Filename,
					line:   pos.Line,
					rules:  rules,
					reason: strings.TrimSpace(strings.TrimPrefix(rest, fields[0])),
				})
				for _, line := range []int{pos.Line, pos.Line + 1} {
					k := suppressKey{file: pos.Filename, line: line}
					s.byLine[k] = append(s.byLine[k], idx)
				}
			}
		}
	}
	return s
}

// covers reports whether directive d names the rule (or the wildcard).
func (d *directive) covers(rule string) bool {
	for _, r := range d.rules {
		if r == rule || r == "*" {
			return true
		}
	}
	return false
}

// matchAt marks and reports any directive covering rule at (file, line).
func (s *suppressions) matchAt(file string, line int, rule string) bool {
	hit := false
	for _, idx := range s.byLine[suppressKey{file: file, line: line}] {
		if s.directives[idx].covers(rule) {
			s.used[idx] = true
			hit = true
		}
	}
	return hit
}

// suppressed reports whether the diagnostic is covered by a directive on
// its own line or the line above it. For path-carrying diagnostics a
// directive at the path's source (its first step) also suppresses: one
// reviewed annotation at a nondeterminism source covers every sink it
// reaches.
func (s *suppressions) suppressed(d Diagnostic) bool {
	hit := s.matchAt(d.File, d.Line, d.Rule)
	if len(d.Path) > 0 {
		src := d.Path[0]
		if s.matchAt(src.File, src.Line, d.Rule) {
			hit = true
		}
	}
	return hit
}

// stale returns the directives that never suppressed a finding during
// the runs this index was threaded through.
func (s *suppressions) stale() []directive {
	var out []directive
	for i, d := range s.directives {
		if !s.used[i] {
			out = append(out, d)
		}
	}
	return out
}
