package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// ignoreDirective is the comment prefix that suppresses findings.
const ignoreDirective = "lint:ignore"

// suppressions indexes //lint:ignore directives by file and line.
type suppressions struct {
	// byLine maps "file\x00line" to the set of rule IDs ignored there.
	// The wildcard rule "*" ignores every rule.
	byLine map[suppressKey]map[string]bool
}

type suppressKey struct {
	file string
	line int
}

// collectSuppressions scans the comment lists of the package's files for
// lint:ignore directives. A directive written as
//
//	//lint:ignore rule1[,rule2] reason
//
// suppresses the named rules on the directive's own line (end-of-line
// comment) and on the line directly below it (comment above the flagged
// statement). A missing reason keeps the directive valid but is
// discouraged; the reason exists for reviewers, not the tool.
func collectSuppressions(fset *token.FileSet, files []*ast.File) *suppressions {
	s := &suppressions{byLine: map[suppressKey]map[string]bool{}}
	for _, f := range files {
		for _, cg := range f.Comments {
			for _, c := range cg.List {
				text := strings.TrimPrefix(c.Text, "//")
				text = strings.TrimPrefix(text, "/*")
				text = strings.TrimSpace(strings.TrimSuffix(text, "*/"))
				if !strings.HasPrefix(text, ignoreDirective) {
					continue
				}
				rest := strings.TrimSpace(strings.TrimPrefix(text, ignoreDirective))
				fields := strings.Fields(rest)
				if len(fields) == 0 {
					continue
				}
				pos := fset.Position(c.Pos())
				for _, rule := range strings.Split(fields[0], ",") {
					rule = strings.TrimSpace(rule)
					if rule == "" {
						continue
					}
					s.add(pos.Filename, pos.Line, rule)
					s.add(pos.Filename, pos.Line+1, rule)
				}
			}
		}
	}
	return s
}

func (s *suppressions) add(file string, line int, rule string) {
	k := suppressKey{file: file, line: line}
	m := s.byLine[k]
	if m == nil {
		m = map[string]bool{}
		s.byLine[k] = m
	}
	m[rule] = true
}

// suppressed reports whether the diagnostic is covered by a directive on
// its own line or the line above it.
func (s *suppressions) suppressed(d Diagnostic) bool {
	m := s.byLine[suppressKey{file: d.File, line: d.Line}]
	return m != nil && (m[d.Rule] || m["*"])
}
