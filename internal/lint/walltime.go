package lint

import (
	"go/ast"
	"strings"
)

// WallTime flags references to time.Now, time.Since, and time.Until in
// internal packages that are supposed to run on the analytic virtual
// clock (internal/simclock). The whole point of the virtual clock is that
// a run's recorded timings are a pure function of the workload — two runs
// of the same input produce byte-identical metadata and reports. A stray
// wall-clock read smuggles the host's scheduler back into results that
// the comparison layer treats as reproducible.
//
// Exempt by design:
//   - internal/simclock: owns time modeling.
//   - internal/metrics: its Stopwatch is the sanctioned, injectable
//     wall-clock measurement point (used to report real wall time next
//     to virtual time, never inside it).
//   - everything outside internal/ (cmd/, examples/, the root package):
//     user-facing tools may timestamp freely.
var WallTime = &Analyzer{
	Name:     "walltime",
	Doc:      "wall-clock read (time.Now/Since/Until) in a virtual-clock package (use internal/simclock or inject a clock)",
	Severity: SeverityError,
	Run:      runWallTime,
}

// wallTimeExempt are internal packages allowed to touch the wall clock.
var wallTimeExempt = []string{"internal/simclock", "internal/metrics"}

// wallTimeFuncs are the flagged time-package functions.
var wallTimeFuncs = map[string]bool{"Now": true, "Since": true, "Until": true}

func runWallTime(p *Pass) {
	if !strings.HasPrefix(p.Pkg, "internal/") || pkgIn(p.Pkg, wallTimeExempt...) {
		return
	}
	for _, f := range p.Files {
		if !importsTime(f) {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			sel, ok := n.(*ast.SelectorExpr)
			if !ok {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || x.Name != "time" || !wallTimeFuncs[sel.Sel.Name] {
				return true
			}
			p.Reportf(sel.Pos(), "time.%s reads the wall clock in a virtual-clock package; price the operation with internal/simclock or inject a clock", sel.Sel.Name)
			return true
		})
	}
}

// importsTime reports whether the file imports the standard time package
// without renaming it away from the default identifier.
func importsTime(f *ast.File) bool {
	for _, imp := range f.Imports {
		if imp.Path.Value != `"time"` {
			continue
		}
		if imp.Name == nil || imp.Name.Name == "time" {
			return true
		}
	}
	return false
}
