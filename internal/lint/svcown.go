package lint

import (
	"go/ast"
	"strings"
)

// SvcOwn flags process-wide resource acquisition — aio.Default() and
// device.Default() — outside internal/service. The service plane is the
// one owner of the shared kernel pool and ring engine: every production
// path reaches internal/compare with the plane's resources already
// injected into Options, which is what makes Plane.Close a meaningful
// lifecycle event (drain, join, leak-check). A stray Default() call in
// any other package re-creates the accidental-singleton era: a resource
// nobody owns, nobody drains, and Close cannot account for.
//
// Exempt by design:
//   - internal/service: the plane wraps the singletons in Default();
//     this is the sanctioned acquisition point.
//   - _test.go files: tests may grab the singletons directly to build
//     fixtures or warm goroutine baselines.
//
// In-package defaulting (a bare Default() call inside internal/aio or
// internal/device itself) is the package's own business and is not
// matched — only qualified cross-package calls are.
var SvcOwn = &Analyzer{
	Name:     "svcown",
	Doc:      "process-wide resource acquisition (aio.Default/device.Default) outside internal/service (inject the plane's pool and ring instead)",
	Severity: SeverityError,
	Run:      runSvcOwn,
}

// svcOwnPkgs maps the flagged package identifiers to the import paths
// they must resolve to (an unrelated local "aio" package is not ours).
var svcOwnPkgs = map[string]string{
	"aio":    `"repro/internal/aio"`,
	"device": `"repro/internal/device"`,
}

func runSvcOwn(p *Pass) {
	if pkgIn(p.Pkg, "internal/service") {
		return
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		owned := svcOwnImports(f)
		if len(owned) == 0 {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			call, ok := n.(*ast.CallExpr)
			if !ok || len(call.Args) != 0 {
				return true
			}
			sel, ok := call.Fun.(*ast.SelectorExpr)
			if !ok || sel.Sel.Name != "Default" {
				return true
			}
			x, ok := sel.X.(*ast.Ident)
			if !ok || !owned[x.Name] {
				return true
			}
			p.Reportf(call.Pos(), "%s.Default() acquires a process-wide resource outside internal/service; inject the plane's pool/ring (service.Default().Executor()/Backend()) or construct a private instance", x.Name)
			return true
		})
	}
}

// svcOwnImports returns the identifiers under which the file imports the
// owned resource packages (honoring renames; a rename away hides the
// default identifier, a rename onto it is matched under the new name).
func svcOwnImports(f *ast.File) map[string]bool {
	owned := make(map[string]bool)
	for _, imp := range f.Imports {
		def := ""
		for name, path := range svcOwnPkgs {
			if imp.Path.Value == path {
				def = name
				break
			}
		}
		if def == "" {
			continue
		}
		if imp.Name != nil {
			owned[imp.Name.Name] = true
		} else {
			owned[def] = true
		}
	}
	return owned
}
