package lint

import "testing"

func TestSvcOwn(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		file string
		src  string
		want []string
	}{
		{
			name: "aio.Default outside service flagged",
			pkg:  "internal/compare",
			src: `package compare
import "repro/internal/aio"
func pick() aio.Backend {
	return aio.Default()
}
`,
			want: []string{"4:svcown"},
		},
		{
			name: "device.Default outside service flagged",
			pkg:  "internal/experiments",
			src: `package experiments
import "repro/internal/device"
var exec = device.Default()
`,
			want: []string{"3:svcown"},
		},
		{
			name: "facade package flagged too",
			pkg:  ".",
			src: `package repro
import (
	"repro/internal/aio"
	"repro/internal/device"
)
func resources() (any, any) {
	return device.Default(), aio.Default()
}
`,
			want: []string{"7:svcown", "7:svcown"},
		},
		{
			name: "internal/service is the sanctioned owner",
			pkg:  "internal/service",
			src: `package service
import (
	"repro/internal/aio"
	"repro/internal/device"
)
func acquire() (any, any) {
	return device.Default(), aio.Default()
}
`,
			want: nil,
		},
		{
			name: "test files exempt",
			pkg:  "internal/compare",
			file: "leak_test.go",
			src: `package compare
import "repro/internal/aio"
func warm() { _ = aio.Default() }
`,
			want: nil,
		},
		{
			name: "in-package bare Default not matched",
			pkg:  "internal/device",
			src: `package device
func Cancelable() Executor { return Default() }
`,
			want: nil,
		},
		{
			name: "unrelated package named aio not matched",
			pkg:  "internal/other",
			src: `package other
import aio "example.com/aio"
func f() { _ = aio.Default() }
`,
			want: nil,
		},
		{
			name: "renamed import still caught",
			pkg:  "internal/stream",
			src: `package stream
import engine "repro/internal/aio"
func f() { _ = engine.Default() }
`,
			want: []string{"3:svcown"},
		},
		{
			name: "Default with arguments not matched",
			pkg:  "internal/compare",
			src: `package compare
import "repro/internal/device"
func f() { _ = device.Default }
`,
			want: nil,
		},
		{
			name: "suppression honored",
			pkg:  "internal/compare",
			src: `package compare
import "repro/internal/aio"
//lint:ignore svcown reviewed: fixture generator predates the plane
var ring = aio.Default()
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			file := tc.file
			if file == "" {
				file = "fixture.go"
			}
			got := runSourceNamed(t, SvcOwn, tc.pkg, file, tc.src)
			expectDiags(t, got, tc.want...)
		})
	}
}
