package lint

import (
	"os"
	"path/filepath"
	"testing"
)

// fixTree builds a fixture module, runs Fix over it, and returns the
// resulting content of the named file plus the fix results.
func fixTree(t *testing.T, files map[string]string, read string) (string, []FixResult) {
	t.Helper()
	root := t.TempDir()
	mustWrite(t, root, "go.mod", "module fixture\n\ngo 1.22\n")
	// The helper packages must exist for the rewritten tree to build.
	mustWrite(t, root, "internal/safeclose/safeclose.go", `package safeclose

import "io"

func Do(c io.Closer, errp *error) {
	if err := c.Close(); err != nil && *errp == nil {
		*errp = err
	}
}
`)
	mustWrite(t, root, "internal/simclock/simclock.go", `package simclock

import "time"

func Epoch() time.Time { return time.Unix(0, 0).UTC() }
`)
	for rel, content := range files {
		mustWrite(t, root, rel, content)
	}
	results, err := Fix(Config{Root: root}, "./...")
	if err != nil {
		t.Fatalf("Fix: %v", err)
	}
	data, err := os.ReadFile(filepath.Join(root, read))
	if err != nil {
		t.Fatal(err)
	}

	// Idempotence: a second run must find nothing left to fix.
	again, err := Fix(Config{Root: root}, "./...")
	if err != nil {
		t.Fatalf("second Fix: %v", err)
	}
	for _, r := range again {
		if r.Applied != 0 {
			t.Fatalf("fix is not idempotent: second run applied %d in %s", r.Applied, r.File)
		}
	}
	return string(data), results
}

// TestFixErrClose rewrites dropped Close statements (bare and deferred)
// into safeclose.Do and adds the import.
func TestFixErrClose(t *testing.T) {
	before := `package ckpt

import "os"

func write(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer f.Close()
	_, err = f.Write(data)
	return err
}

func also(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	f.Close()
	return nil
}
`
	after := `package ckpt

import (
	"os"

	"fixture/internal/safeclose"
)

func write(path string, data []byte) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	defer safeclose.Do(f, &err)
	_, err = f.Write(data)
	return err
}

func also(path string) (err error) {
	f, err := os.Create(path)
	if err != nil {
		return err
	}
	safeclose.Do(f, &err)
	return nil
}
`
	got, results := fixTree(t, map[string]string{"internal/ckpt/w.go": before}, "internal/ckpt/w.go")
	if got != after {
		t.Fatalf("fixed source mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, after)
	}
	if len(results) != 1 || results[0].Applied != 2 || results[0].Skipped != 0 {
		t.Fatalf("results: %+v", results)
	}
}

// TestFixErrCloseSkipsWithoutNamedError: no named error result means no
// place to capture the Close error; the site is skipped, not mangled.
func TestFixErrCloseSkipsWithoutNamedError(t *testing.T) {
	before := `package ckpt

import "os"

func fire(path string) {
	f, _ := os.Create(path)
	f.Close()
}
`
	got, results := fixTree(t, map[string]string{"internal/ckpt/w.go": before}, "internal/ckpt/w.go")
	if got != before {
		t.Fatalf("source must be untouched, got:\n%s", got)
	}
	if len(results) != 1 || results[0].Applied != 0 || results[0].Skipped != 1 {
		t.Fatalf("results: %+v", results)
	}
}

// TestFixWallTime rewrites time.Now() to simclock.Epoch(), swaps the
// imports, and leaves time.Since (no mechanical fix) alone.
func TestFixWallTime(t *testing.T) {
	before := `package pipe

import "time"

func stamp() time.Time {
	return time.Now()
}
`
	after := `package pipe

import (
	"time"

	"fixture/internal/simclock"
)

func stamp() time.Time {
	return simclock.Epoch()
}
`
	got, results := fixTree(t, map[string]string{"internal/pipe/p.go": before}, "internal/pipe/p.go")
	if got != after {
		t.Fatalf("fixed source mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, after)
	}
	if len(results) != 1 || results[0].Applied != 1 {
		t.Fatalf("results: %+v", results)
	}
}

// TestFixWallTimeDropsUnusedTimeImport: when the rewrite removes the
// last time.X reference the import goes with it.
func TestFixWallTimeDropsUnusedTimeImport(t *testing.T) {
	before := `package pipe

import "time"

func stampNanos() int64 {
	return time.Now().UnixNano()
}
`
	after := `package pipe

import (
	"fixture/internal/simclock"
)

func stampNanos() int64 {
	return simclock.Epoch().UnixNano()
}
`
	got, _ := fixTree(t, map[string]string{"internal/pipe/p.go": before}, "internal/pipe/p.go")
	if got != after {
		t.Fatalf("fixed source mismatch:\n--- got ---\n%s\n--- want ---\n%s", got, after)
	}
}

// TestFixHonorsSuppressions: an annotated site is a reviewed decision
// and must not be rewritten.
func TestFixHonorsSuppressions(t *testing.T) {
	before := `package pipe

import "time"

func stamp() time.Time {
	//lint:ignore walltime provenance timestamp, reviewed
	return time.Now()
}
`
	got, results := fixTree(t, map[string]string{"internal/pipe/p.go": before}, "internal/pipe/p.go")
	if got != before {
		t.Fatalf("suppressed site must be untouched, got:\n%s", got)
	}
	if len(results) != 0 {
		t.Fatalf("results should be empty: %+v", results)
	}
}

// TestFixSourceNoDiags: FixSource with no diagnostics returns the input
// unchanged.
func TestFixSourceNoDiags(t *testing.T) {
	src := []byte("package p\n")
	out, applied, skipped, err := FixSource(src, nil, "fixture")
	if err != nil || applied != 0 || skipped != 0 || string(out) != string(src) {
		t.Fatalf("got %q applied=%d skipped=%d err=%v", out, applied, skipped, err)
	}
}
