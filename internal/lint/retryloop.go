package lint

import (
	"go/ast"
	"go/token"
	"strings"
)

// Retryloop flags hand-rolled retry loops in internal packages. Retries
// must go through internal/retry: its Policy classifies errors, caps the
// attempt budget, and prices backoff on the virtual clock. A bare loop
// that spins on attempt counters — or worse, sleeps on the wall clock —
// bypasses all three and skews the cost model.
//
// Two shapes are flagged:
//
//  1. time.Sleep anywhere inside a loop body. Backoff is virtual time in
//     this codebase (engine.Exec.AddVirtual); a sleeping loop stalls real
//     workers and is invisible to the cost model.
//  2. A for-loop whose control clause names an attempt/retry/backoff
//     variable but whose body never calls a policy method (.Do or .Next).
//     Such a loop re-implements retry scheduling by hand.
//
// internal/retry itself is exempt: it is the one place allowed to own
// the scheduling math.
var Retryloop = &Analyzer{
	Name:     "retryloop",
	Doc:      "hand-rolled retry loops: attempt-counting for-loops must consult retry.Policy (Do/Next), and loops must never time.Sleep",
	Severity: SeverityError,
	Run:      runRetryloop,
}

// retryloopExempt lists packages allowed to hand-roll retry scheduling.
var retryloopExempt = []string{
	"internal/retry", // owns the backoff math the rule enforces elsewhere
}

func runRetryloop(p *Pass) {
	if !strings.HasPrefix(p.Pkg, "internal/") || pkgIn(p.Pkg, retryloopExempt...) {
		return
	}
	for _, f := range p.Files {
		reported := make(map[token.Pos]bool)
		ast.Inspect(f, func(n ast.Node) bool {
			var body *ast.BlockStmt
			var ctrl []ast.Node
			switch l := n.(type) {
			case *ast.ForStmt:
				body = l.Body
				for _, c := range []ast.Node{l.Init, l.Cond, l.Post} {
					if c != nil {
						ctrl = append(ctrl, c)
					}
				}
			case *ast.RangeStmt:
				body = l.Body
			default:
				return true
			}
			for _, pos := range sleepCalls(body) {
				if !reported[pos] {
					reported[pos] = true
					p.Reportf(pos, "time.Sleep inside a loop: price backoff on virtual time via retry.Policy instead")
				}
			}
			if hasRetryIdent(ctrl) && !callsPolicy(body) && !reported[n.Pos()] {
				reported[n.Pos()] = true
				p.Reportf(n.Pos(), "hand-rolled retry loop: drive attempts through retry.Policy (Do or Next)")
			}
			return true
		})
	}
}

// sleepCalls collects the positions of time.Sleep calls under n.
func sleepCalls(n ast.Node) []token.Pos {
	var out []token.Pos
	ast.Inspect(n, func(c ast.Node) bool {
		call, ok := c.(*ast.CallExpr)
		if !ok {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok || sel.Sel.Name != "Sleep" {
			return true
		}
		if id, ok := sel.X.(*ast.Ident); ok && id.Name == "time" {
			out = append(out, call.Pos())
		}
		return true
	})
	return out
}

// hasRetryIdent reports whether any identifier in the loop's control
// clause is named after retry bookkeeping.
func hasRetryIdent(ctrl []ast.Node) bool {
	found := false
	for _, c := range ctrl {
		ast.Inspect(c, func(n ast.Node) bool {
			id, ok := n.(*ast.Ident)
			if !ok || found {
				return !found
			}
			name := strings.ToLower(id.Name)
			for _, k := range []string{"attempt", "retry", "retries", "backoff"} {
				if strings.Contains(name, k) {
					found = true
					return false
				}
			}
			return true
		})
	}
	return found
}

// callsPolicy reports whether the loop body calls a retry-policy method
// (.Do or .Next) — the sanctioned way to schedule another attempt.
func callsPolicy(body ast.Node) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		if sel, ok := call.Fun.(*ast.SelectorExpr); ok {
			if sel.Sel.Name == "Do" || sel.Sel.Name == "Next" {
				found = true
				return false
			}
		}
		return true
	})
	return found
}
