package lint

import (
	"go/ast"
)

// ErrClose flags statements in internal/ckpt and internal/pfs that call
// Close, Flush, Sync, or Write and drop the returned error on the floor.
// On the checkpoint write path a dropped Close error is a checkpoint
// that hashed clean but never became durable — the comparator would then
// certify reproducibility against data that does not exist. The rule
// covers bare expression statements and `defer x.Close()`-style defers.
//
// An explicit `_ = x.Close()` assignment is allowed: it is a reviewed,
// visible decision to discard (used on error-return paths where the
// original error must win). Deferred closes on read-only paths where the
// error genuinely cannot matter are annotated //lint:ignore errclose.
var ErrClose = &Analyzer{
	Name:     "errclose",
	Doc:      "dropped error from Close/Flush/Sync/Write on a checkpoint or PFS path (handle it or assign to _)",
	Severity: SeverityError,
	Run:      runErrClose,
}

// errClosePkgs are the packages whose write paths the rule polices.
var errClosePkgs = []string{"internal/ckpt", "internal/pfs"}

// errCloseMethods are the error-returning I/O methods whose result must
// not be silently dropped.
var errCloseMethods = map[string]bool{
	"Close": true, "Flush": true, "Sync": true, "Write": true,
}

func runErrClose(p *Pass) {
	if !pkgIn(p.Pkg, errClosePkgs...) {
		return
	}
	for _, f := range p.Files {
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.ExprStmt:
				if name, ok := droppedIOCall(n.X); ok {
					p.Reportf(n.Pos(), "error from %s dropped; handle it or discard explicitly with _ =", name)
				}
			case *ast.DeferStmt:
				if name, ok := droppedIOCall(n.Call); ok {
					p.Reportf(n.Pos(), "error from deferred %s dropped; capture it or //lint:ignore errclose with why it cannot matter", name)
				}
			case *ast.GoStmt:
				if name, ok := droppedIOCall(n.Call); ok {
					p.Reportf(n.Pos(), "error from %s dropped in go statement", name)
				}
			}
			return true
		})
	}
}

// droppedIOCall reports whether e is a method call like x.Close() whose
// method is in errCloseMethods, returning a printable name.
func droppedIOCall(e ast.Expr) (string, bool) {
	call, ok := e.(*ast.CallExpr)
	if !ok {
		return "", false
	}
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || !errCloseMethods[sel.Sel.Name] {
		return "", false
	}
	recv := exprString(sel.X)
	if recv == "" {
		recv = "<expr>"
	}
	return recv + "." + sel.Sel.Name, true
}
