package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config controls a lint run over the source tree.
type Config struct {
	// Root is the module root. Package paths in diagnostics and in
	// analyzer scoping rules are relative to it.
	Root string
	// Analyzers is the rule set to run; nil means All().
	Analyzers []*Analyzer
	// IncludeTests includes _test.go files in the analysis. Off by
	// default: the determinism and ε-safety guarantees are about
	// production paths, and test files compare floats and leak nothing
	// past the test binary.
	IncludeTests bool
}

// Run expands the given package patterns relative to cfg.Root, parses
// each package, runs the analyzers, and returns all surviving
// diagnostics sorted by position. Patterns follow go-tool conventions:
// "./..." walks recursively, "./internal/ckpt" names one directory.
func Run(cfg Config, patterns ...string) ([]Diagnostic, error) {
	if cfg.Root == "" {
		cfg.Root = "."
	}
	if cfg.Analyzers == nil {
		cfg.Analyzers = All()
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(cfg.Root, patterns)
	if err != nil {
		return nil, err
	}
	fset := token.NewFileSet()
	var out []Diagnostic
	for _, dir := range dirs {
		files, err := parseDir(fset, filepath.Join(cfg.Root, dir), cfg.IncludeTests)
		if err != nil {
			return nil, err
		}
		if len(files) == 0 {
			continue
		}
		pkg := filepath.ToSlash(dir)
		out = append(out, AnalyzeFiles(fset, files, pkg, cfg.Analyzers)...)
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	return out, nil
}

// expandPatterns resolves package patterns to a sorted, de-duplicated
// list of directories relative to root.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(filepath.Clean(rel))
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		p := pat
		if strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(p, "/...")
		} else if p == "..." {
			recursive = true
			p = "."
		}
		p = filepath.Clean(p)
		base := filepath.Join(root, p)
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(p)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			add(rel)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the Go files of one directory (non-recursive) with
// comments. It returns nil if the directory holds no eligible files.
func parseDir(fset *token.FileSet, dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// FindModuleRoot walks upward from dir looking for go.mod, so reprovet
// can be invoked from any subdirectory.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
