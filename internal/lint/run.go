package lint

import (
	"fmt"
	"go/ast"
	"go/parser"
	"go/token"
	"os"
	"path/filepath"
	"sort"
	"strings"
)

// Config controls a lint run over the source tree.
type Config struct {
	// Root is the module root. Package paths in diagnostics and in
	// analyzer scoping rules are relative to it.
	Root string
	// Analyzers is the rule set to run; nil means All().
	Analyzers []*Analyzer
	// IncludeTests includes _test.go files in the analysis. Off by
	// default: the determinism and ε-safety guarantees are about
	// production paths, and test files compare floats and leak nothing
	// past the test binary. Tier-2 analyzers always exclude test files:
	// external-test packages and test-only dependencies would drag the
	// type-check surface far past what the dataflow rules police.
	IncludeTests bool
	// Tier selects the analysis depth: 1 (or 0, the default being
	// normalized to the full suite's maximum) runs the syntactic rules
	// only; 2 additionally type-checks each package and runs the
	// go/types-backed dataflow rules. Packages whose type-check fails
	// degrade to tier 1 silently — tier 2 adds findings, never removes
	// or invents them.
	Tier int
}

// effectiveTier normalizes the config's tier: unset means "as deep as
// the selected analyzers require".
func (cfg Config) effectiveTier() int {
	if cfg.Tier != 0 {
		return cfg.Tier
	}
	tier := 1
	for _, a := range cfg.Analyzers {
		if a.tier() > tier {
			tier = a.tier()
		}
	}
	return tier
}

// StaleIgnore is a //lint:ignore directive that suppressed nothing
// during a full run: dead weight at best, a masked regression at worst.
// `reprovet -audit-ignores` reports these.
type StaleIgnore struct {
	File   string   `json:"file"`
	Line   int      `json:"line"`
	Rules  []string `json:"rules"`
	Reason string   `json:"reason,omitempty"`
}

// Run expands the given package patterns relative to cfg.Root, parses
// each package, runs the analyzers, and returns all surviving
// diagnostics sorted by position. Patterns follow go-tool conventions:
// "./..." walks recursively, "./internal/ckpt" names one directory.
func Run(cfg Config, patterns ...string) ([]Diagnostic, error) {
	diags, _, err := run(cfg, false, patterns...)
	return diags, err
}

// RunAudit is Run plus directive liveness tracking: it returns the
// surviving diagnostics and every suppression directive that did not
// suppress a single finding across the whole run. Auditing is only
// meaningful over the full rule set at the deepest tier — a directive
// for a tier-2 rule looks dead to a tier-1 run.
func RunAudit(cfg Config, patterns ...string) ([]Diagnostic, []StaleIgnore, error) {
	return run(cfg, true, patterns...)
}

func run(cfg Config, audit bool, patterns ...string) ([]Diagnostic, []StaleIgnore, error) {
	if cfg.Root == "" {
		cfg.Root = "."
	}
	if cfg.Analyzers == nil {
		cfg.Analyzers = All()
	}
	if len(patterns) == 0 {
		patterns = []string{"./..."}
	}
	dirs, err := expandPatterns(cfg.Root, patterns)
	if err != nil {
		return nil, nil, err
	}

	// Tier 2 brings its own loader (and FileSet): the loader's parse is
	// also what gets type-checked. Suppression directives are collected
	// once per package from the tier-1 parse and shared with the tier-2
	// pass — matching is by (file, line), and both parses see the same
	// paths — so directive liveness is observed across both tiers.
	var loader *Loader
	tier1, tier2 := splitByTier(cfg.Analyzers)
	if cfg.effectiveTier() >= 2 && len(tier2) > 0 {
		loader, err = NewLoader(cfg.Root)
		if err != nil {
			return nil, nil, err
		}
	}

	fset := token.NewFileSet()
	var out []Diagnostic
	var stale []StaleIgnore
	for _, dir := range dirs {
		files, err := parseDir(fset, filepath.Join(cfg.Root, dir), cfg.IncludeTests)
		if err != nil {
			return nil, nil, err
		}
		if len(files) == 0 {
			continue
		}
		pkg := filepath.ToSlash(dir)
		sup := collectSuppressions(fset, files)
		out = append(out, analyzeFiles(fset, files, pkg, tier1, nil, sup)...)
		if loader != nil {
			if lp := loader.Load(pkg); lp.Err == nil {
				var typed *typedContext
				if lp.Info != nil {
					typed = &typedContext{info: lp.Info, pkg: lp.Pkg, module: loader.Module()}
				}
				out = append(out, analyzeFiles(lp.Fset, lp.Files, lp.Dir, tier2, typed, sup)...)
			}
		}
		if audit {
			for _, d := range sup.stale() {
				stale = append(stale, StaleIgnore{File: d.file, Line: d.line, Rules: d.rules, Reason: d.reason})
			}
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		return a.Col < b.Col
	})
	sort.Slice(stale, func(i, j int) bool {
		if stale[i].File != stale[j].File {
			return stale[i].File < stale[j].File
		}
		return stale[i].Line < stale[j].Line
	})
	return out, stale, nil
}

// splitByTier partitions the analyzer list into syntactic (tier-1) and
// type-backed (tier-2) rules.
func splitByTier(analyzers []*Analyzer) (tier1, tier2 []*Analyzer) {
	for _, a := range analyzers {
		if a.tier() >= 2 {
			tier2 = append(tier2, a)
		} else {
			tier1 = append(tier1, a)
		}
	}
	return tier1, tier2
}

// expandPatterns resolves package patterns to a sorted, de-duplicated
// list of directories relative to root.
func expandPatterns(root string, patterns []string) ([]string, error) {
	seen := map[string]bool{}
	var dirs []string
	add := func(rel string) {
		rel = filepath.ToSlash(filepath.Clean(rel))
		if !seen[rel] {
			seen[rel] = true
			dirs = append(dirs, rel)
		}
	}
	for _, pat := range patterns {
		recursive := false
		p := pat
		if strings.HasSuffix(p, "/...") {
			recursive = true
			p = strings.TrimSuffix(p, "/...")
		} else if p == "..." {
			recursive = true
			p = "."
		}
		p = filepath.Clean(p)
		base := filepath.Join(root, p)
		info, err := os.Stat(base)
		if err != nil {
			return nil, fmt.Errorf("lint: pattern %q: %w", pat, err)
		}
		if !info.IsDir() {
			return nil, fmt.Errorf("lint: pattern %q is not a directory", pat)
		}
		if !recursive {
			add(p)
			continue
		}
		err = filepath.WalkDir(base, func(path string, d os.DirEntry, err error) error {
			if err != nil {
				return err
			}
			if !d.IsDir() {
				return nil
			}
			name := d.Name()
			if path != base && (strings.HasPrefix(name, ".") || strings.HasPrefix(name, "_") || name == "testdata" || name == "vendor") {
				return filepath.SkipDir
			}
			rel, err := filepath.Rel(root, path)
			if err != nil {
				return err
			}
			add(rel)
			return nil
		})
		if err != nil {
			return nil, err
		}
	}
	sort.Strings(dirs)
	return dirs, nil
}

// parseDir parses the Go files of one directory (non-recursive) with
// comments. It returns nil if the directory holds no eligible files.
func parseDir(fset *token.FileSet, dir string, includeTests bool) ([]*ast.File, error) {
	entries, err := os.ReadDir(dir)
	if err != nil {
		return nil, err
	}
	var files []*ast.File
	for _, e := range entries {
		name := e.Name()
		if e.IsDir() || !strings.HasSuffix(name, ".go") || strings.HasPrefix(name, ".") {
			continue
		}
		if !includeTests && strings.HasSuffix(name, "_test.go") {
			continue
		}
		f, err := parser.ParseFile(fset, filepath.Join(dir, name), nil, parser.ParseComments)
		if err != nil {
			return nil, fmt.Errorf("lint: %w", err)
		}
		files = append(files, f)
	}
	return files, nil
}

// FindModuleRoot walks upward from dir looking for go.mod, so reprovet
// can be invoked from any subdirectory.
func FindModuleRoot(dir string) (string, error) {
	abs, err := filepath.Abs(dir)
	if err != nil {
		return "", err
	}
	for {
		if _, err := os.Stat(filepath.Join(abs, "go.mod")); err == nil {
			return abs, nil
		}
		parent := filepath.Dir(abs)
		if parent == abs {
			return "", fmt.Errorf("lint: no go.mod found above %s", dir)
		}
		abs = parent
	}
}
