package lint

import "testing"

func TestCasprune(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "string-converted prefix stays conservative",
			pkg:  "internal/compare",
			src: `package compare
func prune(dig, other []byte) bool {
	return string(dig[:8]) == string(other[:8])
}
`,
			want: nil, // the conversion hides the slice; the rule is syntactic
		},
		{
			name: "raw digest prefix equality flagged",
			pkg:  "internal/cas",
			src: `package cas
func prune(digA, digB string) bool {
	return digA[:8] == digB[:8]
}
`,
			want: []string{"3:casprune"},
		},
		{
			name: "prefix inequality flagged",
			pkg:  "internal/merkle",
			src: `package merkle
func changed(leafHex, oldHex string) bool {
	return leafHex[:4] != oldHex
}
`,
			want: []string{"3:casprune"},
		},
		{
			name: "bytes.Equal on truncated digest flagged",
			pkg:  "internal/ckpt",
			src: `package ckpt
import "bytes"
func dedup(digest, stored []byte) bool {
	return bytes.Equal(digest[:4], stored[:4])
}
`,
			want: []string{"4:casprune"},
		},
		{
			name: "bytes.HasPrefix on digest flagged",
			pkg:  "internal/stream",
			src: `package stream
import "bytes"
func match(leafHash, probe []byte) bool {
	return bytes.HasPrefix(leafHash, probe)
}
`,
			want: []string{"4:casprune"},
		},
		{
			name: "strings.HasPrefix on hash flagged",
			pkg:  "internal/compare",
			src: `package compare
import "strings"
func find(hashHex string) bool {
	return strings.HasPrefix(hashHex, "ab")
}
`,
			want: []string{"4:casprune"},
		},
		{
			name: "full digest equality allowed",
			pkg:  "internal/cas",
			src: `package cas
func hit(digA, digB [16]byte) bool {
	return digA == digB
}
`,
			want: nil,
		},
		{
			name: "full-width slice copy allowed",
			pkg:  "internal/cas",
			src: `package cas
import "bytes"
func same(dig, stored []byte) bool {
	return bytes.Equal(dig[:], stored[:])
}
`,
			want: nil,
		},
		{
			name: "non-digest slicing allowed",
			pkg:  "internal/compare",
			src: `package compare
func head(name, want string) bool {
	return name[:3] == want
}
`,
			want: nil,
		},
		{
			name: "suppression honored",
			pkg:  "internal/cas",
			src: `package cas
func bucket(dig string) bool {
	//lint:ignore casprune sharding key, not a prune decision
	return dig[:2] == "00"
}
`,
			want: nil,
		},
		{
			name: "out-of-scope package ignored",
			pkg:  "internal/catalog",
			src: `package catalog
import "strings"
func rev(hash string) bool {
	return strings.HasPrefix(hash, "v1-") && hash[:4] == "v1-0"
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, Casprune, tc.pkg, tc.src), tc.want...)
		})
	}
}
