package lint

import (
	"go/ast"
	"strings"
)

// MapHash flags `range` loops over maps whose body feeds data into a
// hash/digest/writer or appends to a slice that outlives the loop. Go
// randomizes map iteration order per run, and the comparator's chained
// Murmur3F digests are order-sensitive: a map-ordered write into a digest
// (or into recorded run metadata) makes two identical runs hash
// differently — a false POSITIVE factory at best, and a broken
// hash-linked evidence chain at worst. Iterate over sorted keys instead;
// an append that is sorted later in the same function is recognized and
// exempt.
var MapHash = &Analyzer{
	Name:     "maphash",
	Doc:      "map-ordered iteration feeding a hash, writer, or accumulated result (sort the keys first)",
	Severity: SeverityError,
	Run:      runMapHash,
}

// hashSinkMethods are method names whose invocation inside a map-range
// body marks the loop as order-sensitive.
var hashSinkMethods = map[string]bool{
	"Write": true, "WriteString": true, "WriteByte": true, "WriteRune": true,
	"Sum": true, "Sum64": true, "Sum128": true, "SumDigest": true,
	"Hash": true, "HashChunk": true, "HashChunkScratch": true,
	"Digest": true, "Update": true, "Encode": true,
}

func runMapHash(p *Pass) {
	for _, f := range p.Files {
		forEachFunc(f, func(node ast.Node, body *ast.BlockStmt, sc *funcScope) {
			// Collect the sort targets of the whole function once: an
			// append inside a map range is fine if the result is sorted
			// before use.
			sorted := sortTargets(body)
			ast.Inspect(body, func(n ast.Node) bool {
				rs, ok := n.(*ast.RangeStmt)
				if !ok || !isMapRange(rs, sc) {
					return true
				}
				if sink, what := mapRangeSink(rs, sorted); sink {
					p.Reportf(rs.For, "map iteration order is nondeterministic but the loop body %s; iterate over sorted keys", what)
				}
				return true
			})
		})
	}
}

// isMapRange reports whether the range expression is syntactically a map.
func isMapRange(rs *ast.RangeStmt, sc *funcScope) bool {
	switch x := rs.X.(type) {
	case *ast.Ident:
		return sc.maps[x.Name]
	case *ast.CompositeLit:
		_, ok := x.Type.(*ast.MapType)
		return ok
	case *ast.CallExpr:
		return isMakeOf(x, func(t ast.Expr) bool { _, ok := t.(*ast.MapType); return ok })
	}
	return false
}

// mapRangeSink inspects a map-range body for order-sensitive sinks and
// returns a description of the first one found. Appends whose target is
// later sorted (per the sorted set) are exempt.
func mapRangeSink(rs *ast.RangeStmt, sorted map[string]bool) (bool, string) {
	found := false
	what := ""
	ast.Inspect(rs.Body, func(n ast.Node) bool {
		if found {
			return false
		}
		call, ok := n.(*ast.CallExpr)
		if !ok {
			return true
		}
		switch fn := call.Fun.(type) {
		case *ast.SelectorExpr:
			if hashSinkMethods[fn.Sel.Name] {
				found = true
				what = "calls " + exprString(fn.X) + "." + fn.Sel.Name
				return false
			}
		case *ast.Ident:
			if fn.Name == "append" && len(call.Args) > 0 {
				target := exprString(call.Args[0])
				if target != "" && !sorted[target] {
					found = true
					what = "appends to " + target + " (unsorted after the loop)"
					return false
				}
			}
		}
		return true
	})
	return found, what
}

// sortTargets returns the rendered expressions passed as the first
// argument to a sort.* or slices.Sort* call anywhere in the body.
func sortTargets(body *ast.BlockStmt) map[string]bool {
	out := map[string]bool{}
	ast.Inspect(body, func(n ast.Node) bool {
		call, ok := n.(*ast.CallExpr)
		if !ok || len(call.Args) == 0 {
			return true
		}
		sel, ok := call.Fun.(*ast.SelectorExpr)
		if !ok {
			return true
		}
		pkg, ok := sel.X.(*ast.Ident)
		if !ok {
			return true
		}
		isSort := pkg.Name == "sort" || (pkg.Name == "slices" && strings.HasPrefix(sel.Sel.Name, "Sort"))
		if !isSort {
			return true
		}
		if t := exprString(call.Args[0]); t != "" {
			out[t] = true
		}
		return true
	})
	return out
}
