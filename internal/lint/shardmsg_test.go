package lint

import "testing"

func TestShardmsg(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "flat message allowed",
			pkg:  "internal/shard",
			src: `package shard
type UnitMsg struct {
	Seq    int64
	DType  uint8
	Digest [16]byte
	Chunks []ChunkRefMsg
	Diffs  []int64
}
type ChunkRefMsg struct {
	Index int64
}
`,
			want: nil,
		},
		{
			name: "map field flagged",
			pkg:  "internal/shard",
			src: `package shard
type VerdictMsg struct {
	Seq   int64
	Diffs map[int64]int64
}
`,
			want: []string{"4:shardmsg"},
		},
		{
			name: "pointer field flagged",
			pkg:  "internal/shard",
			src: `package shard
type UnitMsg struct {
	Next *UnitMsg
}
`,
			want: []string{"3:shardmsg"},
		},
		{
			name: "slice of pointers flagged",
			pkg:  "internal/shard",
			src: `package shard
type DoneMsg struct {
	Peers []*DoneMsg
}
`,
			want: []string{"3:shardmsg"},
		},
		{
			name: "chan and func and interface flagged",
			pkg:  "internal/shard",
			src: `package shard
type CtrlMsg struct {
	Ack  chan struct{}
	Hook func()
	Any  interface{}
}
`,
			want: []string{"3:shardmsg", "4:shardmsg", "5:shardmsg"},
		},
		{
			name: "non-message struct ignored",
			pkg:  "internal/shard",
			src: `package shard
type run struct {
	folds map[int64]int
	gate  *int
}
`,
			want: nil,
		},
		{
			name: "out-of-scope package ignored",
			pkg:  "internal/mpi",
			src: `package mpi
type EnvelopeMsg struct {
	Payload map[string][]byte
}
`,
			want: nil,
		},
		{
			name: "suppression honored",
			pkg:  "internal/shard",
			src: `package shard
type DebugMsg struct {
	//lint:ignore shardmsg in-process diagnostics only, never encoded
	Trace map[string]int64
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, Shardmsg, tc.pkg, tc.src), tc.want...)
		})
	}
}
