package lint

import (
	"go/ast"
	"go/token"
)

// GoCheck flags `go` statements launched from a function that shows no
// join construct at all: no WaitGroup/errgroup Wait, no channel receive,
// no range-over-channel, no select, no Join call. An unjoined goroutine
// in the aio/stream/cluster pipelines can outlive its Run call and keep
// mutating shared cost accumulators while the next phase reads them —
// exactly the kind of nondeterminism the capture pipeline must exclude.
//
// The check is per enclosing function and deliberately coarse: any join
// evidence in the function clears all its launches, because matching a
// specific goroutine to a specific join is a whole-program property a
// syntactic pass cannot decide. Worker pools joined by a separate
// Close/Shutdown method are the known false positive; annotate those
// launch sites with //lint:ignore gocheck <how it is joined>.
var GoCheck = &Analyzer{
	Name:     "gocheck",
	Doc:      "goroutine launch with no join (WaitGroup, channel receive, select, or Join) in scope",
	Severity: SeverityError,
	Run:      runGoCheck,
}

func runGoCheck(p *Pass) {
	for _, f := range p.Files {
		forEachFunc(f, func(node ast.Node, body *ast.BlockStmt, sc *funcScope) {
			var launches []*ast.GoStmt
			ast.Inspect(body, func(n ast.Node) bool {
				if g, ok := n.(*ast.GoStmt); ok {
					launches = append(launches, g)
				}
				return true
			})
			if len(launches) == 0 {
				return
			}
			if hasJoinEvidence(body, sc) {
				return
			}
			for _, g := range launches {
				p.Reportf(g.Go, "goroutine launched with no join in the enclosing function (add a WaitGroup/channel join, or //lint:ignore gocheck with the join site)")
			}
		})
	}
}

// hasJoinEvidence reports whether the function body contains any
// construct that waits for concurrent work to finish.
func hasJoinEvidence(body *ast.BlockStmt, sc *funcScope) bool {
	found := false
	ast.Inspect(body, func(n ast.Node) bool {
		if found {
			return false
		}
		switch n := n.(type) {
		case *ast.UnaryExpr:
			if n.Op == token.ARROW { // <-ch receive
				found = true
			}
		case *ast.SelectStmt:
			found = true
		case *ast.RangeStmt:
			if x, ok := n.X.(*ast.Ident); ok && sc.chans[x.Name] {
				found = true
			}
		case *ast.CallExpr:
			if sel, ok := n.Fun.(*ast.SelectorExpr); ok {
				switch sel.Sel.Name {
				case "Wait", "Join":
					found = true
				}
			}
		}
		return !found
	})
	return found
}
