package lint

import (
	"fmt"
	"go/ast"
	"go/importer"
	"go/token"
	"go/types"
	"os"
	"path/filepath"
	"strings"
	"sync"
)

// Loader is the tier-2 type-checking substrate: it resolves and checks
// module-local packages from source, delegating standard-library imports
// to go/importer's source importer. Results are memoized per Loader, so
// one lint run type-checks each package at most once.
//
// Failure is a first-class outcome, not an error path: a package that
// does not type-check (syntax damage, missing dependency, exotic build
// constraints) yields a Loaded with Err set, and every tier-2 analyzer
// degrades to a silent skip for that package. Tier-2 rules add findings
// on top of tier 1; they must never invent one from partial type facts.
type Loader struct {
	// Fset is shared by every package the loader parses, so positions in
	// tier-2 diagnostics are directly comparable with suppression
	// directives collected from the same files.
	Fset *token.FileSet

	root   string // module root directory
	module string // module path from go.mod

	pkgs    map[string]*Loaded // keyed by slash-separated dir relative to root ("." = root)
	loading map[string]bool    // cycle guard

	stdErr error // sticky failure constructing the std importer
}

// Loaded is one type-checked package: the parsed files (comments
// included, test files excluded), the checked *types.Package, and the
// populated *types.Info. When Err is non-nil the other fields are
// best-effort and tier-2 analysis must not run.
type Loaded struct {
	// Fset is the loader's FileSet, the one every position in Files
	// resolves against.
	Fset *token.FileSet
	// Dir is the package directory relative to the module root, slash
	// separated; "." is the root package.
	Dir string
	// PkgPath is the full import path (module path + Dir).
	PkgPath string
	// Files are the parsed non-test files, with comments.
	Files []*ast.File
	// Pkg is the type-checked package object.
	Pkg *types.Package
	// Info holds the expression types, object resolution, selections and
	// generic instantiation records the taint engine consumes.
	Info *types.Info
	// Err is non-nil when the package failed to parse or type-check; the
	// package then gets tier-1 analysis only.
	Err error
}

// stdImporter is the process-wide source importer for GOROOT packages.
// Checking the standard library from source is the expensive part of
// tier 2 (~1s cold), so it is shared across Loaders and guarded by a
// mutex; std positions land in a private FileSet nobody reports against.
var (
	stdOnce     sync.Once
	stdImp      types.ImporterFrom
	stdInitErr  error
	stdMu       sync.Mutex
	stdIfaceMu  sync.Mutex
	stdIfaces   = map[string]*types.Interface{}
	stdIfaceErr = map[string]bool{}
)

func stdImporter() (types.ImporterFrom, error) {
	stdOnce.Do(func() {
		defer func() {
			if r := recover(); r != nil {
				stdInitErr = fmt.Errorf("lint: source importer unavailable: %v", r)
			}
		}()
		imp, ok := importer.ForCompiler(token.NewFileSet(), "source", nil).(types.ImporterFrom)
		if !ok {
			stdInitErr = fmt.Errorf("lint: source importer lacks ImportFrom")
			return
		}
		stdImp = imp
	})
	return stdImp, stdInitErr
}

// importStd resolves a standard-library import through the shared source
// importer.
func importStd(path string) (*types.Package, error) {
	imp, err := stdImporter()
	if err != nil {
		return nil, err
	}
	stdMu.Lock()
	defer stdMu.Unlock()
	return imp.ImportFrom(path, "", 0)
}

// stdInterface returns the named interface type from a standard-library
// package (e.g. stdInterface("hash", "Hash")), or nil when it cannot be
// resolved — callers treat nil as "skip this check", keeping tier 2
// false-positive-free when the std source tree is unavailable.
func stdInterface(pkgPath, name string) *types.Interface {
	key := pkgPath + "." + name
	stdIfaceMu.Lock()
	defer stdIfaceMu.Unlock()
	if iface, ok := stdIfaces[key]; ok {
		return iface
	}
	if stdIfaceErr[key] {
		return nil
	}
	pkg, err := importStd(pkgPath)
	if err != nil {
		stdIfaceErr[key] = true
		return nil
	}
	obj := pkg.Scope().Lookup(name)
	if obj == nil {
		stdIfaceErr[key] = true
		return nil
	}
	iface, ok := obj.Type().Underlying().(*types.Interface)
	if !ok {
		stdIfaceErr[key] = true
		return nil
	}
	stdIfaces[key] = iface
	return iface
}

// NewLoader builds a Loader for the module rooted at root. It fails only
// when the module path cannot be determined; per-package type failures
// are reported through Loaded.Err instead.
func NewLoader(root string) (*Loader, error) {
	module, err := modulePath(root)
	if err != nil {
		return nil, err
	}
	return &Loader{
		Fset:    token.NewFileSet(),
		root:    root,
		module:  module,
		pkgs:    map[string]*Loaded{},
		loading: map[string]bool{},
	}, nil
}

// Module returns the module path the loader resolves local imports
// against.
func (l *Loader) Module() string { return l.module }

// modulePath extracts the module path from root/go.mod.
func modulePath(root string) (string, error) {
	data, err := os.ReadFile(filepath.Join(root, "go.mod"))
	if err != nil {
		return "", fmt.Errorf("lint: %w", err)
	}
	for _, line := range strings.Split(string(data), "\n") {
		line = strings.TrimSpace(line)
		if rest, ok := strings.CutPrefix(line, "module"); ok {
			mod := strings.TrimSpace(rest)
			mod = strings.Trim(mod, `"`)
			if mod != "" {
				return mod, nil
			}
		}
	}
	return "", fmt.Errorf("lint: no module line in %s/go.mod", root)
}

// Load type-checks the package in the given directory (relative to the
// module root, slash separated, "." for the root package) and memoizes
// the result. It never returns nil.
func (l *Loader) Load(dir string) *Loaded {
	dir = filepath.ToSlash(filepath.Clean(dir))
	if lp, ok := l.pkgs[dir]; ok {
		return lp
	}
	if l.loading[dir] {
		lp := &Loaded{Fset: l.Fset, Dir: dir, Err: fmt.Errorf("lint: import cycle through %s", dir)}
		l.pkgs[dir] = lp
		return lp
	}
	l.loading[dir] = true
	defer delete(l.loading, dir)

	lp := l.check(dir)
	l.pkgs[dir] = lp
	return lp
}

// check does the actual parse + type-check for one directory.
func (l *Loader) check(dir string) *Loaded {
	pkgPath := l.module
	if dir != "." {
		pkgPath = l.module + "/" + dir
	}
	lp := &Loaded{Fset: l.Fset, Dir: dir, PkgPath: pkgPath}

	files, err := parseDir(l.Fset, filepath.Join(l.root, dir), false)
	if err != nil {
		lp.Err = err
		return lp
	}
	if len(files) == 0 {
		lp.Err = fmt.Errorf("lint: no buildable Go files in %s", dir)
		return lp
	}
	lp.Files = files

	info := &types.Info{
		Types:      map[ast.Expr]types.TypeAndValue{},
		Defs:       map[*ast.Ident]types.Object{},
		Uses:       map[*ast.Ident]types.Object{},
		Selections: map[*ast.SelectorExpr]*types.Selection{},
		Instances:  map[*ast.Ident]types.Instance{},
		Implicits:  map[ast.Node]types.Object{},
	}
	var typeErrs []error
	conf := types.Config{
		Importer: (*loaderImporter)(l),
		Error:    func(err error) { typeErrs = append(typeErrs, err) },
	}
	pkg, err := conf.Check(pkgPath, l.Fset, files, info)
	if len(typeErrs) > 0 {
		err = typeErrs[0]
	}
	if err != nil {
		lp.Err = fmt.Errorf("lint: typecheck %s: %w", pkgPath, err)
		return lp
	}
	lp.Pkg = pkg
	lp.Info = info
	return lp
}

// loaderImporter adapts Loader to types.ImporterFrom: module-local
// import paths are checked from source through the same Loader;
// everything else goes to the shared standard-library importer.
type loaderImporter Loader

func (li *loaderImporter) Import(path string) (*types.Package, error) {
	return li.ImportFrom(path, "", 0)
}

func (li *loaderImporter) ImportFrom(path, dir string, mode types.ImportMode) (*types.Package, error) {
	l := (*Loader)(li)
	if path == l.module || strings.HasPrefix(path, l.module+"/") {
		rel := "."
		if path != l.module {
			rel = strings.TrimPrefix(path, l.module+"/")
		}
		lp := l.Load(rel)
		if lp.Err != nil {
			return nil, lp.Err
		}
		return lp.Pkg, nil
	}
	return importStd(path)
}
