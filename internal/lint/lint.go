// Package lint is a project-specific static-analysis framework for the
// repro codebase. It enforces, at the source level, the invariants the
// paper's no-false-negative guarantee rests on:
//
//   - determinism of every hashed or recorded path (chained Murmur3F
//     digests are order-sensitive, so map-iteration order must never
//     reach a digest or a run artifact),
//   - ε-safety of float comparisons (raw ==/!=/< on floats bypasses the
//     error-bound machinery in internal/errbound),
//   - leak-free concurrency (an unjoined goroutine in the aio/stream/
//     cluster pipelines can outlive its run and corrupt shared cost
//     accounting),
//   - no silently dropped I/O errors on checkpoint and PFS write paths
//     (a dropped Close error means a checkpoint that hashes clean but
//     never became durable),
//   - virtual-clock discipline (packages priced by internal/simclock
//     must not consult the wall clock).
//
// The framework is stdlib-only (go/ast, go/parser, go/token); analyzers
// are purely syntactic, tuned to this codebase's idioms rather than
// general Go. Findings can be suppressed with a
//
//	//lint:ignore <rule>[,<rule>...] <reason>
//
// comment on the flagged line or the line directly above it. The
// cmd/reprovet CLI drives the framework; `make lint` runs it over the
// whole tree.
package lint

import (
	"fmt"
	"go/ast"
	"go/token"
	"go/types"
	"sort"
)

// Severity classifies how a diagnostic affects the exit status of the
// reprovet CLI. Both levels are reported; only the distinction between
// "informational" and "gate-failing" is encoded here so future rules can
// soft-launch as warnings.
type Severity int

// Severity levels, ordered.
const (
	// SeverityWarning marks findings that are reported but do not fail
	// the lint gate on their own.
	SeverityWarning Severity = iota
	// SeverityError marks findings that fail the lint gate.
	SeverityError
)

// String returns the lowercase name of the severity.
func (s Severity) String() string {
	switch s {
	case SeverityWarning:
		return "warning"
	case SeverityError:
		return "error"
	default:
		return fmt.Sprintf("Severity(%d)", int(s))
	}
}

// Diagnostic is one finding: a position, the rule that produced it, its
// severity, and a human-readable message. Tier-2 dataflow rules also
// attach the source→sink path that justifies the finding.
type Diagnostic struct {
	Pos      token.Position `json:"-"`
	File     string         `json:"file"`
	Line     int            `json:"line"`
	Col      int            `json:"col"`
	Rule     string         `json:"rule"`
	Severity string         `json:"severity"`
	Message  string         `json:"message"`
	// Path, when present, is the dataflow trail from the nondeterminism
	// source (first step) to the sink the diagnostic is anchored at.
	Path []PathStep `json:"path,omitempty"`
}

// PathStep is one hop of a dataflow path: a position and what happened
// there ("map iteration order", "returned from keys", "reaches digest
// write").
type PathStep struct {
	File string `json:"file"`
	Line int    `json:"line"`
	Col  int    `json:"col"`
	Note string `json:"note"`
}

// String renders the step in file:line:col form.
func (s PathStep) String() string {
	return fmt.Sprintf("%s:%d:%d: %s", s.File, s.Line, s.Col, s.Note)
}

// String renders the diagnostic in the conventional file:line:col form.
func (d Diagnostic) String() string {
	return fmt.Sprintf("%s:%d:%d: %s: %s [%s]", d.File, d.Line, d.Col, d.Severity, d.Message, d.Rule)
}

// Analyzer is one named rule. Run inspects the files of a single package
// and reports findings through the Pass.
type Analyzer struct {
	// Name is the rule ID used in reports and //lint:ignore comments.
	Name string
	// Doc is a one-line description shown by `reprovet -list`.
	Doc string
	// Severity is attached to every diagnostic the analyzer reports.
	Severity Severity
	// Tier classifies the rule: tier 1 (the zero value) is purely
	// syntactic and always available; tier 2 requires go/types facts and
	// silently skips any package whose type information could not be
	// loaded (never a false positive from partial types).
	Tier int
	// Run performs the analysis on one package.
	Run func(*Pass)
}

// tier normalizes the zero value to tier 1.
func (a *Analyzer) tier() int {
	if a.Tier < 2 {
		return 1
	}
	return a.Tier
}

// Pass carries one package's parsed files through one analyzer and
// collects its diagnostics.
type Pass struct {
	// Fset maps token.Pos values to file positions.
	Fset *token.FileSet
	// Files are the package's parsed files (comments included).
	Files []*ast.File
	// Pkg is the package directory relative to the module root with
	// forward slashes, e.g. "internal/ckpt". The module root itself is
	// ".".
	Pkg string

	// TypesInfo and TypesPkg carry the go/types facts for tier-2
	// analyzers; both are nil on tier-1 passes and on packages whose
	// type-check failed. Module is the module path ("" when untyped),
	// letting rules match fully-qualified names without hardcoding the
	// module name.
	TypesInfo *types.Info
	TypesPkg  *types.Package
	Module    string

	analyzer *Analyzer
	diags    []Diagnostic
}

// Reportf records a diagnostic at pos under the pass's current analyzer.
func (p *Pass) Reportf(pos token.Pos, format string, args ...any) {
	p.ReportPath(pos, nil, format, args...)
}

// ReportPath records a diagnostic carrying a dataflow path. The path's
// first step is the source; suppression directives on the source line
// silence the finding just like directives on the sink line, so a
// reviewed nondeterminism source does not need one annotation per sink.
func (p *Pass) ReportPath(pos token.Pos, path []PathStep, format string, args ...any) {
	position := p.Fset.Position(pos)
	p.diags = append(p.diags, Diagnostic{
		Pos:      position,
		File:     position.Filename,
		Line:     position.Line,
		Col:      position.Column,
		Rule:     p.analyzer.Name,
		Severity: p.analyzer.Severity.String(),
		Message:  fmt.Sprintf(format, args...),
		Path:     path,
	})
}

// Step converts a token position into a PathStep.
func (p *Pass) Step(pos token.Pos, format string, args ...any) PathStep {
	position := p.Fset.Position(pos)
	return PathStep{
		File: position.Filename,
		Line: position.Line,
		Col:  position.Column,
		Note: fmt.Sprintf(format, args...),
	}
}

// AnalyzeFiles runs the given analyzers over one package's files and
// returns the surviving diagnostics: suppression comments are honored,
// and results are sorted by file, line, column, then rule. Tier-2
// analyzers in the list are skipped (no type information here); use
// AnalyzeTypedFiles for them.
func AnalyzeFiles(fset *token.FileSet, files []*ast.File, pkg string, analyzers []*Analyzer) []Diagnostic {
	return analyzeFiles(fset, files, pkg, analyzers, nil, nil)
}

// AnalyzeTypedFiles runs analyzers over one type-checked package. Both
// tiers run: tier-1 rules see the same files, tier-2 rules additionally
// see the go/types facts. lp.Err != nil reduces the pass to tier 1.
func AnalyzeTypedFiles(lp *Loaded, module string, analyzers []*Analyzer) []Diagnostic {
	var typed *typedContext
	if lp.Err == nil && lp.Info != nil {
		typed = &typedContext{info: lp.Info, pkg: lp.Pkg, module: module}
	}
	return analyzeFiles(lp.Fset, lp.Files, lp.Dir, analyzers, typed, nil)
}

// typedContext bundles the optional go/types facts for one package.
type typedContext struct {
	info   *types.Info
	pkg    *types.Package
	module string
}

// analyzeFiles is the shared core of AnalyzeFiles/AnalyzeTypedFiles.
// When sup is nil a fresh suppression index is collected from the files;
// passing a non-nil index lets callers (the stale-ignore audit) observe
// which directives actually suppressed something.
func analyzeFiles(fset *token.FileSet, files []*ast.File, pkg string, analyzers []*Analyzer, typed *typedContext, sup *suppressions) []Diagnostic {
	if sup == nil {
		sup = collectSuppressions(fset, files)
	}
	var out []Diagnostic
	for _, a := range analyzers {
		pass := &Pass{Fset: fset, Files: files, Pkg: pkg, analyzer: a}
		if a.tier() >= 2 {
			if typed == nil {
				continue // degrade to silent skip without type facts
			}
			pass.TypesInfo = typed.info
			pass.TypesPkg = typed.pkg
			pass.Module = typed.module
		}
		a.Run(pass)
		for _, d := range pass.diags {
			if sup.suppressed(d) {
				continue
			}
			out = append(out, d)
		}
	}
	sort.Slice(out, func(i, j int) bool {
		a, b := out[i], out[j]
		if a.File != b.File {
			return a.File < b.File
		}
		if a.Line != b.Line {
			return a.Line < b.Line
		}
		if a.Col != b.Col {
			return a.Col < b.Col
		}
		return a.Rule < b.Rule
	})
	return out
}

// HasErrors reports whether any diagnostic carries error severity — the
// condition under which the lint gate fails.
func HasErrors(diags []Diagnostic) bool {
	for _, d := range diags {
		if d.Severity == SeverityError.String() {
			return true
		}
	}
	return false
}

// All returns the full analyzer suite in stable order. Callers that need
// a subset (reprovet -rules) filter by name.
func All() []*Analyzer {
	return []*Analyzer{
		FloatCmp,
		MapHash,
		GoCheck,
		ErrClose,
		WallTime,
		KernelAlloc,
		RingLife,
		Ctxflow,
		Retryloop,
		Casprune,
		Shardmsg,
		SvcOwn,
		DetFlow,
		EpsFlow,
		WalChain,
	}
}

// ByName returns the analyzer with the given rule ID, or nil.
func ByName(name string) *Analyzer {
	for _, a := range All() {
		if a.Name == name {
			return a
		}
	}
	return nil
}
