package lint

import (
	"go/ast"
	"go/token"
)

// FloatCmp flags raw ==, !=, <, <=, >, >= comparisons whose operands are
// (syntactically) floating point. The paper's no-false-negative guarantee
// is defined in terms of the ε-bound machinery in internal/errbound:
// a raw float comparison on a decision path silently re-introduces
// bit-exactness sensitivity that the quantization grid was built to
// absorb. Use errbound.Equal / errbound.EqualRel, or compare against an
// explicit epsilon, and suppress with //lint:ignore floatcmp <reason>
// where an exact comparison is intentional (e.g. IEEE special-value
// dispatch).
//
// Scoping decisions, deliberate and documented:
//   - internal/errbound and internal/murmur3 are exempt: they ARE the
//     ε-compare and hashing machinery.
//   - Comparisons against a literal zero are exempt: sign tests and
//     emptiness guards (x <= 0) are exact in IEEE 754 and ubiquitous in
//     the cost model.
var FloatCmp = &Analyzer{
	Name:     "floatcmp",
	Doc:      "raw float comparison outside the ε-bound machinery (use errbound.Equal or an explicit epsilon)",
	Severity: SeverityError,
	Run:      runFloatCmp,
}

// floatCmpExempt lists packages allowed to compare floats raw.
var floatCmpExempt = []string{"internal/errbound", "internal/murmur3"}

func runFloatCmp(p *Pass) {
	if pkgIn(p.Pkg, floatCmpExempt...) {
		return
	}
	for _, f := range p.Files {
		forEachFunc(f, func(node ast.Node, body *ast.BlockStmt, sc *funcScope) {
			ast.Inspect(body, func(n ast.Node) bool {
				be, ok := n.(*ast.BinaryExpr)
				if !ok || !isCompareOp(be.Op) {
					return true
				}
				if !sc.isFloatExpr(be.X) && !sc.isFloatExpr(be.Y) {
					return true
				}
				if be.Op != token.EQL && be.Op != token.NEQ && (isZeroLit(be.X) || isZeroLit(be.Y)) {
					return true
				}
				p.Reportf(be.OpPos, "raw float comparison %q: route through errbound.Equal or an explicit ε", be.Op)
				return true
			})
		})
	}
}

func isCompareOp(op token.Token) bool {
	switch op {
	case token.EQL, token.NEQ, token.LSS, token.LEQ, token.GTR, token.GEQ:
		return true
	}
	return false
}

// isZeroLit reports whether e is the literal 0 or 0.0 (possibly signed or
// parenthesized).
func isZeroLit(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.ParenExpr:
		return isZeroLit(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return isZeroLit(e.X)
		}
	case *ast.BasicLit:
		if e.Kind != token.INT && e.Kind != token.FLOAT {
			return false
		}
		for _, c := range e.Value {
			if c != '0' && c != '.' {
				return false
			}
		}
		return true
	}
	return false
}
