package lint

import (
	"go/ast"
	"strings"
)

// WalChain flags hand-rolled journal chain coordinates: composite
// literals of wal.Record that set Seq, Prev, or Digest, and assignments
// (or ++/--) to those fields in any package that imports
// repro/internal/wal. The chain fields are owned by Journal.Append —
// it assigns consecutive sequence numbers, links Prev to the head
// digest, and hashes the payload — and that single writer is what makes
// verify-log's invariants (consecutive Seq, linked Prev, recomputable
// Digest) mean something. A caller that pre-fills the coordinates
// either gets rejected at runtime (Append refuses preset chain fields)
// or, worse, fabricates a record that only looks chained.
//
// Exempt by design:
//   - internal/wal: the journal is the one sanctioned chain writer.
//   - _test.go files: tamper fixtures forge chain fields on purpose.
//
// The check is syntactic and keyed on the wal import: in a file that
// imports repro/internal/wal, any write to a field named Seq, Prev, or
// Digest is treated as journal-adjacent. An unrelated field collision
// in such a file is the rare case suppression comments exist for.
var WalChain = &Analyzer{
	Name:     "walchain",
	Doc:      "journal chain coordinates (Seq/Prev/Digest) written outside internal/wal (Journal.Append owns the chain; leave them zero)",
	Severity: SeverityError,
	Run:      runWalChain,
}

const walChainImport = `"repro/internal/wal"`

// walChainFields are the Record fields only Journal.Append may write.
var walChainFields = map[string]bool{
	"Seq":    true,
	"Prev":   true,
	"Digest": true,
}

func runWalChain(p *Pass) {
	if pkgIn(p.Pkg, "internal/wal") {
		return
	}
	for _, f := range p.Files {
		name := p.Fset.Position(f.Pos()).Filename
		if strings.HasSuffix(name, "_test.go") {
			continue
		}
		walName := walChainImportName(f)
		if walName == "" {
			continue
		}
		ast.Inspect(f, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.CompositeLit:
				if !isWalRecordType(n.Type, walName) {
					return true
				}
				for _, elt := range n.Elts {
					kv, ok := elt.(*ast.KeyValueExpr)
					if !ok {
						continue
					}
					key, ok := kv.Key.(*ast.Ident)
					if !ok || !walChainFields[key.Name] {
						continue
					}
					p.Reportf(kv.Pos(), "%s.Record literal sets chain field %s; Journal.Append owns Seq/Prev/Digest — leave them zero", walName, key.Name)
				}
			case *ast.AssignStmt:
				for _, lhs := range n.Lhs {
					if field := walChainField(lhs); field != "" {
						p.Reportf(lhs.Pos(), "assignment to journal chain field %s outside internal/wal; Journal.Append owns Seq/Prev/Digest", field)
					}
				}
			case *ast.IncDecStmt:
				if field := walChainField(n.X); field != "" {
					p.Reportf(n.X.Pos(), "%s of journal chain field %s outside internal/wal; Journal.Append owns Seq/Prev/Digest", n.Tok, field)
				}
			}
			return true
		})
	}
}

// walChainImportName returns the identifier under which the file
// imports repro/internal/wal (honoring renames), or "" when it does not
// import the journal package at all.
func walChainImportName(f *ast.File) string {
	for _, imp := range f.Imports {
		if imp.Path.Value != walChainImport {
			continue
		}
		if imp.Name != nil {
			return imp.Name.Name
		}
		return "wal"
	}
	return ""
}

// isWalRecordType reports whether the composite literal's type is
// wal.Record under the file's import name for the journal package.
func isWalRecordType(t ast.Expr, walName string) bool {
	sel, ok := t.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "Record" {
		return false
	}
	x, ok := sel.X.(*ast.Ident)
	return ok && x.Name == walName
}

// walChainField returns the chain field name when expr is a selector
// write target like rec.Seq (any base expression), else "".
func walChainField(expr ast.Expr) string {
	sel, ok := expr.(*ast.SelectorExpr)
	if !ok || !walChainFields[sel.Sel.Name] {
		return ""
	}
	return sel.Sel.Name
}
