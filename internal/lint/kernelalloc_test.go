package lint

import "testing"

func TestKernelAllocMake(t *testing.T) {
	src := `package x
func f(exec Executor, n int) {
	exec.For(n, func(i int) {
		buf := make([]byte, 16)
		_ = buf
	})
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src), "4:kernelalloc")
}

func TestKernelAllocNewAndLiterals(t *testing.T) {
	src := `package x
func f(exec Executor, n int) {
	exec.For(n, func(i int) {
		a := new(int)
		b := []int{1, 2}
		c := map[string]int{"a": 1}
		_, _, _ = a, b, c
	})
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src),
		"4:kernelalloc", "5:kernelalloc", "6:kernelalloc")
}

func TestKernelAllocAppendCaptured(t *testing.T) {
	src := `package x
func f(exec Executor, n int) {
	var out []int
	exec.For(n, func(i int) {
		out = append(out, i)
	})
	_ = out
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src), "5:kernelalloc")
}

func TestKernelAllocAppendLocalOK(t *testing.T) {
	// Appending to a slice declared inside the closure is per-iteration
	// local state, not a shared-buffer grow.
	src := `package x
func f(exec Executor, n int) {
	exec.For(n, func(i int) {
		var local []int
		local = append(local, i)
		dst := []int(nil)
		dst = append(dst, i)
	})
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src))
}

func TestKernelAllocFixedArrayOK(t *testing.T) {
	// Fixed-size arrays are stack-allocatable scratch; allocations outside
	// the kernel closure are the fix, not a finding.
	src := `package x
func f(exec Executor, n int) {
	bufs := make([][]byte, n)
	exec.For(n, func(i int) {
		var scratch [16]byte
		v := [4]uint64{1, 2, 3, 4}
		_ = bufs[i]
		_, _ = scratch, v
	})
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src))
}

func TestKernelAllocNestedFor(t *testing.T) {
	// The inner dispatch's closure is reported exactly once (by its own
	// visit), and the clean outer body stays clean.
	src := `package x
func f(exec Executor, n int) {
	exec.For(n, func(i int) {
		exec.For(n, func(j int) {
			s := make([]int, 4)
			_ = s
		})
	})
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src), "5:kernelalloc")
}

func TestKernelAllocNonForCallOK(t *testing.T) {
	// Allocations in ordinary closures (not For kernels) are out of scope.
	src := `package x
func f(run func(int, func(int))) {
	run(8, func(i int) {
		s := make([]int, 4)
		_ = s
	})
	cb := func() []int { return make([]int, 2) }
	_ = cb
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src))
}

func TestKernelAllocSuppression(t *testing.T) {
	src := `package x
func f(exec Executor, n int) {
	exec.For(n, func(i int) {
		//lint:ignore kernelalloc cold path, runs once per field
		s := make([]int, 4)
		_ = s
	})
}`
	expectDiags(t, runSource(t, KernelAlloc, "internal/x", src))
}
