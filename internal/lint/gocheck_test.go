package lint

import "testing"

func TestGoCheck(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "unjoined goroutine",
			src: `package p
func f() {
	go func() {}()
}
`,
			want: []string{"3:gocheck"},
		},
		{
			name: "unjoined method launch",
			src: `package p
type worker struct{}
func (w *worker) loop() {}
func f(w *worker) {
	go w.loop()
}
`,
			want: []string{"5:gocheck"},
		},
		{
			name: "waitgroup join clears",
			src: `package p
import "sync"
func f() {
	var wg sync.WaitGroup
	wg.Add(1)
	go func() { defer wg.Done() }()
	wg.Wait()
}
`,
			want: nil,
		},
		{
			name: "channel receive clears",
			src: `package p
func f() {
	done := make(chan struct{})
	go func() { close(done) }()
	<-done
}
`,
			want: nil,
		},
		{
			name: "range over channel clears",
			src: `package p
func f() {
	ch := make(chan int, 1)
	go func() { close(ch) }()
	for range ch {
	}
}
`,
			want: nil,
		},
		{
			name: "select clears",
			src: `package p
func f(done chan struct{}) {
	go func() {}()
	select {
	case <-done:
	}
}
`,
			want: nil,
		},
		{
			name: "suppressed with join site",
			src: `package p
type pool struct{}
func (p *pool) worker() {}
func f(p *pool) {
	//lint:ignore gocheck joined by pool.Close via inFlight WaitGroup
	go p.worker()
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, GoCheck, "internal/x", tc.src), tc.want...)
		})
	}
}
