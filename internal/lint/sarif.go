package lint

import (
	"encoding/json"
	"path/filepath"
	"strings"
)

// SARIF 2.1.0 export (`reprovet -sarif`), the interchange format CI
// annotators and editors ingest. The subset emitted here is the stable
// core: one run, the driver's rule catalog, one result per diagnostic
// with its physical location, and — for path-carrying tier-2 findings —
// the source→sink trail as relatedLocations, which viewers render as
// linked steps under the finding.

type sarifLog struct {
	Schema  string     `json:"$schema"`
	Version string     `json:"version"`
	Runs    []sarifRun `json:"runs"`
}

type sarifRun struct {
	Tool    sarifTool     `json:"tool"`
	Results []sarifResult `json:"results"`
}

type sarifTool struct {
	Driver sarifDriver `json:"driver"`
}

type sarifDriver struct {
	Name  string      `json:"name"`
	Rules []sarifRule `json:"rules"`
}

type sarifRule struct {
	ID               string       `json:"id"`
	ShortDescription sarifMessage `json:"shortDescription"`
}

type sarifResult struct {
	RuleID           string          `json:"ruleId"`
	Level            string          `json:"level"`
	Message          sarifMessage    `json:"message"`
	Locations        []sarifLocation `json:"locations"`
	RelatedLocations []sarifLocation `json:"relatedLocations,omitempty"`
}

type sarifMessage struct {
	Text string `json:"text"`
}

type sarifLocation struct {
	PhysicalLocation sarifPhysical `json:"physicalLocation"`
	Message          *sarifMessage `json:"message,omitempty"`
}

type sarifPhysical struct {
	ArtifactLocation sarifArtifact `json:"artifactLocation"`
	Region           sarifRegion   `json:"region"`
}

type sarifArtifact struct {
	URI string `json:"uri"`
}

type sarifRegion struct {
	StartLine   int `json:"startLine"`
	StartColumn int `json:"startColumn"`
}

// ToSARIF renders diagnostics as a SARIF 2.1.0 log. File paths are
// emitted relative to root (slash separated) so the log is portable
// across checkouts; severities map warning→warning, error→error.
func ToSARIF(diags []Diagnostic, root string) ([]byte, error) {
	rules := make([]sarifRule, 0, len(All()))
	for _, a := range All() {
		rules = append(rules, sarifRule{ID: a.Name, ShortDescription: sarifMessage{Text: a.Doc}})
	}
	results := make([]sarifResult, 0, len(diags))
	for _, d := range diags {
		res := sarifResult{
			RuleID:  d.Rule,
			Level:   d.Severity,
			Message: sarifMessage{Text: d.Message},
			Locations: []sarifLocation{{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(d.File, root)},
					Region:           sarifRegion{StartLine: d.Line, StartColumn: d.Col},
				},
			}},
		}
		for _, step := range d.Path {
			note := step.Note
			res.RelatedLocations = append(res.RelatedLocations, sarifLocation{
				PhysicalLocation: sarifPhysical{
					ArtifactLocation: sarifArtifact{URI: sarifURI(step.File, root)},
					Region:           sarifRegion{StartLine: step.Line, StartColumn: step.Col},
				},
				Message: &sarifMessage{Text: note},
			})
		}
		results = append(results, res)
	}
	log := sarifLog{
		Schema:  "https://json.schemastore.org/sarif-2.1.0.json",
		Version: "2.1.0",
		Runs: []sarifRun{{
			Tool:    sarifTool{Driver: sarifDriver{Name: "reprovet", Rules: rules}},
			Results: results,
		}},
	}
	return json.MarshalIndent(&log, "", "  ")
}

// sarifURI renders a diagnostic file path relative to root with forward
// slashes; paths that cannot be made relative pass through slashified.
func sarifURI(file, root string) string {
	if root != "" {
		if rel, err := filepath.Rel(root, file); err == nil && !strings.HasPrefix(rel, "..") {
			return filepath.ToSlash(rel)
		}
	}
	return filepath.ToSlash(file)
}
