package lint

import "testing"

func TestMapHash(t *testing.T) {
	cases := []struct {
		name string
		src  string
		want []string
	}{
		{
			name: "map range feeding writer",
			src: `package p
import "hash"
func f(m map[string][]byte, h hash.Hash) {
	for _, v := range m {
		h.Write(v)
	}
}
`,
			want: []string{"4:maphash"},
		},
		{
			name: "map range appending unsorted",
			src: `package p
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	return out
}
`,
			want: []string{"4:maphash"},
		},
		{
			name: "append then sort is exempt",
			src: `package p
import "sort"
func f(m map[string]int) []string {
	var out []string
	for k := range m {
		out = append(out, k)
	}
	sort.Strings(out)
	return out
}
`,
			want: nil,
		},
		{
			name: "append to selector then sort.Slice is exempt",
			src: `package p
import "sort"
type box struct{ names []string }
func f(m map[string]bool, b *box) {
	for k := range m {
		b.names = append(b.names, k)
	}
	sort.Slice(b.names, func(i, j int) bool { return b.names[i] < b.names[j] })
}
`,
			want: nil,
		},
		{
			name: "slices.Sort counts as sorted",
			src: `package p
import "slices"
func f(m map[int]int) []int {
	var out []int
	for k := range m {
		out = append(out, k)
	}
	slices.Sort(out)
	return out
}
`,
			want: nil,
		},
		{
			name: "make map range with digest call",
			src: `package p
type hasher struct{}
func (hasher) SumDigest(b []byte) {}
func f(h hasher) {
	m := make(map[string][]byte)
	for _, v := range m {
		h.SumDigest(v)
	}
}
`,
			want: []string{"6:maphash"},
		},
		{
			name: "slice range is not a map",
			src: `package p
import "hash"
func f(xs [][]byte, h hash.Hash) {
	for _, v := range xs {
		h.Write(v)
	}
}
`,
			want: nil,
		},
		{
			name: "map range with pure reads is clean",
			src: `package p
func f(m map[string]int) int {
	n := 0
	for _, v := range m {
		n += v
	}
	return n
}
`,
			want: nil,
		},
		{
			name: "suppressed",
			src: `package p
import "hash"
func f(m map[string][]byte, h hash.Hash) {
	//lint:ignore maphash keys are hashed commutatively
	for _, v := range m {
		h.Write(v)
	}
}
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, MapHash, "internal/x", tc.src), tc.want...)
		})
	}
}
