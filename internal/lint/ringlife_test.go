package lint

import "testing"

func TestRingLife(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "per-batch ring in a method flagged",
			pkg:  "internal/aio",
			src: `package aio
func (l Legacy) ReadBatch(f *File, reqs []ReadReq) error {
	ring := NewRing(64, 4)
	defer ring.Close()
	return ring.Submit(f, reqs)
}
`,
			want: []string{"3:ringlife"},
		},
		{
			name: "qualified aio.NewRing outside aio flagged",
			pkg:  "internal/stream",
			src: `package stream
import "repro/internal/aio"
func fill() {
	r := aio.NewRing(8, 2)
	defer r.Close()
}
`,
			want: []string{"4:ringlife"},
		},
		{
			name: "constructor may build the ring",
			pkg:  "internal/aio",
			src: `package aio
func NewUring(depth, workers int) *Uring {
	return &Uring{ring: NewRing(depth, workers)}
}
`,
			want: nil,
		},
		{
			name: "lazy ensure helper allowed",
			pkg:  "internal/aio",
			src: `package aio
func (u *Uring) ensureRing() *Ring {
	if u.ring == nil {
		u.ring = NewRing(u.QueueDepth, u.Workers)
	}
	return u.ring
}
`,
			want: nil,
		},
		{
			name: "Default accessor allowed",
			pkg:  "internal/aio",
			src: `package aio
func Default() *Ring { return NewRing(256, 4) }
`,
			want: nil,
		},
		{
			name: "package init allowed",
			pkg:  "internal/aio",
			src: `package aio
var shared *Ring
func init() { shared = NewRing(64, 4) }
`,
			want: nil,
		},
		{
			name: "other constructors not confused with NewRing",
			pkg:  "internal/compare",
			src: `package compare
import "repro/internal/aio"
func verify() {
	_ = aio.NewUring(256, 4)
	_ = aio.NewCoalescing(nil, 0)
}
`,
			want: nil,
		},
		{
			name: "selector from a non-aio receiver clean",
			pkg:  "internal/synth",
			src: `package synth
func f(factory ringFactory) { factory.NewRing() }
`,
			want: nil,
		},
		{
			name: "suppression honored",
			pkg:  "internal/aio",
			src: `package aio
func (l Legacy) ReadBatch() {
	//lint:ignore ringlife the per-batch spawn is the baseline being measured
	ring := NewRing(64, 4)
	_ = ring
}
`,
			want: nil,
		},
		{
			name: "package-level func literal is not setup code",
			pkg:  "internal/aio",
			src: `package aio
var start = func() *Ring { return NewRing(1, 1) }
`,
			want: []string{"2:ringlife"},
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, RingLife, tc.pkg, tc.src), tc.want...)
		})
	}
}
