package lint

import (
	"go/ast"
	"go/token"
)

// KernelAlloc flags heap allocations inside Executor.For kernel closures.
// A For body is the per-iteration unit the device layer fans out across
// workers: tree levels run it once per node, the compare layer once per
// chunk. An allocation there (make, new, a slice or map literal, or an
// append that grows a captured slice) is multiplied by the loop's trip
// count and turns a memory-bandwidth-bound kernel into a GC-bound one —
// the buildFieldTree per-build []error was exactly this bug. Buffers
// belong outside the kernel, sized once, or in per-worker scratch.
//
// The check is syntactic: any method call named For whose final argument
// is a function literal is treated as a kernel dispatch (Serial, Parallel,
// and Pool all share that shape through the Executor interface). An
// append whose destination is declared inside the closure (a local or a
// parameter) is not flagged; growing a captured slice is — it is both an
// allocation and, under a parallel executor, a data race. Genuinely cold
// For bodies can suppress with //lint:ignore kernelalloc <why>.
var KernelAlloc = &Analyzer{
	Name:     "kernelalloc",
	Doc:      "heap allocation (make/new/slice or map literal/append to captured slice) inside an Executor.For kernel closure",
	Severity: SeverityError,
	Run:      runKernelAlloc,
}

func runKernelAlloc(p *Pass) {
	for _, f := range p.Files {
		forEachFunc(f, func(node ast.Node, body *ast.BlockStmt, sc *funcScope) {
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok {
					return true
				}
				if lit := forKernel(call); lit != nil {
					checkKernelBody(p, lit)
				}
				// Keep walking: a nested For dispatch inside this kernel is
				// found by this same Inspect and checked once on its own.
				return true
			})
		})
	}
}

// forKernel returns the kernel closure of an Executor.For dispatch: a
// method call named For whose last argument is a function literal.
func forKernel(call *ast.CallExpr) *ast.FuncLit {
	sel, ok := call.Fun.(*ast.SelectorExpr)
	if !ok || sel.Sel.Name != "For" || len(call.Args) < 2 {
		return nil
	}
	lit, ok := call.Args[len(call.Args)-1].(*ast.FuncLit)
	if !ok {
		return nil
	}
	return lit
}

// checkKernelBody reports allocations in one kernel closure. Nested For
// dispatches are skipped here — their closures get their own visit.
func checkKernelBody(p *Pass, lit *ast.FuncLit) {
	locals := closureLocals(lit)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.CallExpr:
			if forKernel(n) != nil {
				return false
			}
			fn, ok := n.Fun.(*ast.Ident)
			if !ok {
				return true
			}
			switch fn.Name {
			case "make":
				p.Reportf(n.Pos(), "make allocates on every kernel iteration; hoist the buffer out of the For body or use per-worker scratch")
			case "new":
				p.Reportf(n.Pos(), "new allocates on every kernel iteration; hoist the value out of the For body")
			case "append":
				if len(n.Args) == 0 {
					return true
				}
				if id, ok := n.Args[0].(*ast.Ident); ok && !locals[id.Name] {
					p.Reportf(n.Pos(), "append grows captured %q inside a kernel closure (per-iteration allocation, and a data race under a parallel executor); preallocate outside the For body", id.Name)
				}
			}
		case *ast.CompositeLit:
			switch t := n.Type.(type) {
			case *ast.ArrayType:
				// [N]T{...} is stack-allocatable; only slice literals heap.
				if t.Len == nil {
					p.Reportf(n.Pos(), "slice literal allocates on every kernel iteration; hoist it out of the For body")
				}
			case *ast.MapType:
				p.Reportf(n.Pos(), "map literal allocates on every kernel iteration; hoist it out of the For body")
			}
		}
		return true
	})
}

// closureLocals collects the identifiers declared inside the closure:
// parameters, named results, := definitions, var declarations, and range
// variables. Everything else reached from the body is a capture.
func closureLocals(lit *ast.FuncLit) map[string]bool {
	locals := map[string]bool{}
	record := func(fl *ast.FieldList) {
		if fl == nil {
			return
		}
		for _, f := range fl.List {
			for _, name := range f.Names {
				locals[name.Name] = true
			}
		}
	}
	record(lit.Type.Params)
	record(lit.Type.Results)
	ast.Inspect(lit.Body, func(n ast.Node) bool {
		switch n := n.(type) {
		case *ast.AssignStmt:
			if n.Tok != token.DEFINE {
				return true
			}
			for _, lhs := range n.Lhs {
				if id, ok := lhs.(*ast.Ident); ok {
					locals[id.Name] = true
				}
			}
		case *ast.DeclStmt:
			gd, ok := n.Decl.(*ast.GenDecl)
			if !ok {
				return true
			}
			for _, spec := range gd.Specs {
				if vs, ok := spec.(*ast.ValueSpec); ok {
					for _, name := range vs.Names {
						locals[name.Name] = true
					}
				}
			}
		case *ast.RangeStmt:
			if n.Tok == token.DEFINE {
				if id, ok := n.Key.(*ast.Ident); ok {
					locals[id.Name] = true
				}
				if id, ok := n.Value.(*ast.Ident); ok {
					locals[id.Name] = true
				}
			}
		case *ast.FuncLit:
			record(n.Type.Params)
			record(n.Type.Results)
		}
		return true
	})
	return locals
}
