package lint

import (
	"go/ast"
	"strings"
)

// RingLife flags per-call construction of the aio submission/completion
// ring — the I/O twin of kernelalloc. NewRing starts a pool of worker
// goroutines; building one inside a batch-path function (and tearing it
// down with a deferred Close) charges a spawn-and-join to every batch,
// which is exactly the overhead the persistent Uring engine exists to
// amortize. Rings belong in setup code: constructors (New*/new*),
// lazy-start helpers (ensure*/Ensure*), process-wide Default accessors, or
// package init. Anywhere else, reuse a persistent engine (aio.Default(),
// or a Uring you Close when its scope ends).
//
// The check is syntactic: any call of a function named NewRing — bare or
// selected from the aio package — outside those setup shapes is flagged.
// A deliberate per-batch ring (the Legacy baseline backend) suppresses
// with //lint:ignore ringlife <why>.
var RingLife = &Analyzer{
	Name:     "ringlife",
	Doc:      "aio.NewRing constructed outside setup code (New*/ensure*/Default/init) — rings spawn workers and must persist across batches, not be rebuilt per call",
	Severity: SeverityError,
	Run:      runRingLife,
}

func runRingLife(p *Pass) {
	for _, f := range p.Files {
		forEachFunc(f, func(node ast.Node, body *ast.BlockStmt, _ *funcScope) {
			if ringSetupFunc(node) {
				return
			}
			ast.Inspect(body, func(n ast.Node) bool {
				call, ok := n.(*ast.CallExpr)
				if !ok || !isNewRingCall(call) {
					return true
				}
				p.Reportf(call.Pos(), "NewRing starts a worker pool per call; reuse a persistent engine (aio.Default() or a long-lived Uring) or move construction into setup code")
				return true
			})
		})
	}
}

// ringSetupFunc reports whether the function unit is setup code allowed to
// construct rings: a constructor, a lazy-start helper, a Default accessor,
// or package init. Package-level function literals are not setup code.
func ringSetupFunc(node ast.Node) bool {
	fd, ok := node.(*ast.FuncDecl)
	if !ok {
		return false
	}
	name := fd.Name.Name
	if name == "init" || name == "Default" {
		return true
	}
	lower := strings.ToLower(name)
	return strings.HasPrefix(lower, "new") || strings.HasPrefix(lower, "ensure")
}

// isNewRingCall matches NewRing(...) and aio.NewRing(...).
func isNewRingCall(call *ast.CallExpr) bool {
	switch fn := call.Fun.(type) {
	case *ast.Ident:
		return fn.Name == "NewRing"
	case *ast.SelectorExpr:
		if fn.Sel.Name != "NewRing" {
			return false
		}
		x, ok := fn.X.(*ast.Ident)
		return ok && x.Name == "aio"
	}
	return false
}
