package lint

import (
	"go/ast"
	"go/types"
	"strings"
)

// callGraph is the lightweight intra-package call graph the taint engine
// propagates summaries over. Only statically resolvable calls appear:
// direct function calls, method calls on concrete receivers, and generic
// instantiations. Interface dispatch, function values passed around, and
// reflection are deliberate blind spots (documented in DESIGN.md §8) —
// a missing edge can only lose a finding, never invent one.
type callGraph struct {
	// decls maps each package-level function object to its declaration,
	// in deterministic source order via order.
	decls map[*types.Func]*ast.FuncDecl
	// order lists the functions in file/declaration order so fixpoint
	// iteration and reporting are reproducible run to run.
	order []*types.Func
}

// buildCallGraph indexes the package's function declarations.
func buildCallGraph(files []*ast.File, info *types.Info) *callGraph {
	g := &callGraph{decls: map[*types.Func]*ast.FuncDecl{}}
	for _, f := range files {
		for _, decl := range f.Decls {
			fd, ok := decl.(*ast.FuncDecl)
			if !ok || fd.Body == nil {
				continue
			}
			fn, ok := info.Defs[fd.Name].(*types.Func)
			if !ok {
				continue
			}
			g.decls[fn] = fd
			g.order = append(g.order, fn)
		}
	}
	return g
}

// staticCallee resolves a call expression to the *types.Func it
// statically invokes, or nil when the callee is dynamic (interface
// method, function-typed variable, builtin) or untyped.
func staticCallee(info *types.Info, call *ast.CallExpr) *types.Func {
	var id *ast.Ident
	switch fun := ast.Unparen(call.Fun).(type) {
	case *ast.Ident:
		id = fun
	case *ast.SelectorExpr:
		// Interface method calls dispatch dynamically: no static edge.
		if sel, ok := info.Selections[fun]; ok && sel.Kind() == types.MethodVal {
			if types.IsInterface(sel.Recv()) {
				return nil
			}
		}
		id = fun.Sel
	case *ast.IndexExpr:
		// Generic instantiation f[T](...) of a named function.
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	case *ast.IndexListExpr:
		if base, ok := ast.Unparen(fun.X).(*ast.Ident); ok {
			id = base
		}
	default:
		return nil
	}
	if id == nil {
		return nil
	}
	fn, _ := info.Uses[id].(*types.Func)
	return fn
}

// isConversion reports whether the call expression is actually a type
// conversion like []byte(k) or float64(n).
func isConversion(info *types.Info, call *ast.CallExpr) bool {
	tv, ok := info.Types[call.Fun]
	return ok && tv.IsType()
}

// builtinName returns the name of the builtin a call invokes ("len",
// "append", ...), or "".
func builtinName(info *types.Info, call *ast.CallExpr) string {
	id, ok := ast.Unparen(call.Fun).(*ast.Ident)
	if !ok {
		return ""
	}
	if b, ok := info.Uses[id].(*types.Builtin); ok {
		return b.Name()
	}
	return ""
}

// funcFullName renders a function's fully qualified name with the module
// prefix stripped, so rule tables can match "internal/murmur3.SumDigest"
// or "(*internal/murmur3.Chain).Block" regardless of the module path the
// tree was loaded under. Standard-library functions keep their full path
// ("time.Now", "(*encoding/json.Encoder).Encode").
func funcFullName(fn *types.Func, module string) string {
	name := fn.FullName()
	if module == "" {
		return name
	}
	name = strings.ReplaceAll(name, module+"/", "")
	// The root package itself ("module.F") becomes a bare "F" marker
	// prefixed with "./" to stay distinguishable from builtins.
	name = strings.ReplaceAll(name, module+".", "./")
	return name
}
