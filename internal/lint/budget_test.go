package lint

import (
	"testing"
	"time"
)

// tierTwoBudget is the wall-clock ceiling for a full tier-2 run over the
// repository: the gate must stay cheap enough to run on every check, or
// it will be skipped and rot. Measured at ~3s on the whole tree; 10s
// leaves 3x headroom for slower machines.
const tierTwoBudget = 10 * time.Second

// TestTierTwoBudget runs the complete suite at tier 2 over the real
// repository and asserts both that the tree is clean (no error-severity
// finding survives its suppression) and that the run fits the budget.
// This is the `make check` smoke: if either half regresses — a finding
// sneaks in, or type-checking the tree gets slow enough to be skipped in
// practice — this fails before the gate does.
func TestTierTwoBudget(t *testing.T) {
	if testing.Short() {
		t.Skip("full-tree type check; skipped in -short mode")
	}
	if raceEnabled {
		t.Skip("wall-clock budget is meaningless under the race detector")
	}
	root, err := FindModuleRoot(".")
	if err != nil {
		t.Fatalf("FindModuleRoot: %v", err)
	}
	start := time.Now()
	diags, err := Run(Config{Root: root, Tier: 2}, "./...")
	if err != nil {
		t.Fatalf("Run: %v", err)
	}
	elapsed := time.Since(start)
	if HasErrors(diags) {
		t.Errorf("tree is not clean at tier 2: %d finding(s), first: %s", len(diags), diags[0])
	}
	if elapsed > tierTwoBudget {
		t.Errorf("tier-2 run took %v, budget is %v: the gate must stay cheap enough to always run", elapsed, tierTwoBudget)
	}
	t.Logf("tier-2 full-tree run: %v, %d finding(s)", elapsed, len(diags))
}
