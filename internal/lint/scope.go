package lint

import (
	"go/ast"
	"go/token"
	"math"
	"strconv"
	"strings"
)

// funcScope is a lightweight, purely syntactic view of the identifiers
// declared inside one function body (plus its parameters, results and
// receiver). The analyzers are type-checker-free by design — stdlib-only,
// no cross-package resolution — so this classifies idents from their
// declaration syntax and one level of := inference. Unknown idents simply
// stay unclassified, which makes every analyzer conservative: it can miss
// a finding on an exotic declaration but never invents one.
type funcScope struct {
	floats     map[string]bool // float32 / float64 idents
	floatElems map[string]bool // slices/arrays of float idents
	maps       map[string]bool // map-typed idents
	chans      map[string]bool // channel-typed idents
}

func newFuncScope() *funcScope {
	return &funcScope{
		floats:     map[string]bool{},
		floatElems: map[string]bool{},
		maps:       map[string]bool{},
		chans:      map[string]bool{},
	}
}

// isFloatType reports whether a type expression is syntactically float32
// or float64.
func isFloatType(t ast.Expr) bool {
	id, ok := t.(*ast.Ident)
	return ok && (id.Name == "float32" || id.Name == "float64")
}

// isFloatSliceType reports whether t is []floatXX or [N]floatXX.
func isFloatSliceType(t ast.Expr) bool {
	at, ok := t.(*ast.ArrayType)
	return ok && isFloatType(at.Elt)
}

// classify records one ident with an explicit type expression.
func (s *funcScope) classify(name string, t ast.Expr) {
	if name == "" || name == "_" {
		return
	}
	switch {
	case isFloatType(t):
		s.floats[name] = true
	case isFloatSliceType(t):
		s.floatElems[name] = true
	default:
		switch t.(type) {
		case *ast.MapType:
			s.maps[name] = true
		case *ast.ChanType:
			s.chans[name] = true
		}
	}
}

// classifyFieldList records every named field (params, results,
// receivers).
func (s *funcScope) classifyFieldList(fl *ast.FieldList) {
	if fl == nil {
		return
	}
	for _, f := range fl.List {
		for _, n := range f.Names {
			s.classify(n.Name, f.Type)
		}
	}
}

// scopeOf builds the scope for a function declaration or literal: fn is
// the *ast.FuncDecl or *ast.FuncLit whose body will be analyzed.
func scopeOf(fn ast.Node) *funcScope {
	s := newFuncScope()
	var body *ast.BlockStmt
	switch n := fn.(type) {
	case *ast.FuncDecl:
		s.classifyFieldList(n.Recv)
		s.classifyFieldList(n.Type.Params)
		s.classifyFieldList(n.Type.Results)
		body = n.Body
	case *ast.FuncLit:
		s.classifyFieldList(n.Type.Params)
		s.classifyFieldList(n.Type.Results)
		body = n.Body
	}
	if body == nil {
		return s
	}
	// Two passes over the body so a := chain like a := 1.0; b := a
	// resolves regardless of analyzer visit order.
	for i := 0; i < 2; i++ {
		ast.Inspect(body, func(n ast.Node) bool {
			switch n := n.(type) {
			case *ast.DeclStmt:
				gd, ok := n.Decl.(*ast.GenDecl)
				if !ok || gd.Tok != token.VAR {
					return true
				}
				for _, spec := range gd.Specs {
					vs, ok := spec.(*ast.ValueSpec)
					if !ok {
						continue
					}
					for j, name := range vs.Names {
						if vs.Type != nil {
							s.classify(name.Name, vs.Type)
						} else if j < len(vs.Values) {
							s.classifyFromValue(name.Name, vs.Values[j])
						}
					}
				}
			case *ast.AssignStmt:
				if n.Tok != token.DEFINE && n.Tok != token.ASSIGN {
					return true
				}
				if len(n.Lhs) != len(n.Rhs) {
					return true
				}
				for j, lhs := range n.Lhs {
					id, ok := lhs.(*ast.Ident)
					if !ok {
						continue
					}
					s.classifyFromValue(id.Name, n.Rhs[j])
				}
			case *ast.RangeStmt:
				// for _, v := range xs with xs a float slice makes v a
				// float.
				if x, ok := n.X.(*ast.Ident); ok && s.floatElems[x.Name] {
					if v, ok := n.Value.(*ast.Ident); ok && n.Tok == token.DEFINE {
						s.floats[v.Name] = true
					}
				}
			case *ast.FuncLit:
				// Closures are analyzed as part of their enclosing
				// function, so fold their params into the same scope.
				s.classifyFieldList(n.Type.Params)
				s.classifyFieldList(n.Type.Results)
			}
			return true
		})
	}
	return s
}

// classifyFromValue infers an ident's class from the expression assigned
// to it.
func (s *funcScope) classifyFromValue(name string, v ast.Expr) {
	if name == "" || name == "_" {
		return
	}
	switch {
	case s.isFloatExpr(v):
		s.floats[name] = true
	case isMakeOf(v, func(t ast.Expr) bool { _, ok := t.(*ast.MapType); return ok }) || isCompositeOf(v, func(t ast.Expr) bool { _, ok := t.(*ast.MapType); return ok }):
		s.maps[name] = true
	case isMakeOf(v, func(t ast.Expr) bool { _, ok := t.(*ast.ChanType); return ok }):
		s.chans[name] = true
	case isMakeOf(v, isFloatSliceType) || isCompositeOf(v, isFloatSliceType):
		s.floatElems[name] = true
	}
}

// isMakeOf reports whether v is make(T, ...) with T matching pred.
func isMakeOf(v ast.Expr, pred func(ast.Expr) bool) bool {
	call, ok := v.(*ast.CallExpr)
	if !ok || len(call.Args) == 0 {
		return false
	}
	fn, ok := call.Fun.(*ast.Ident)
	if !ok || fn.Name != "make" {
		return false
	}
	return pred(call.Args[0])
}

// isCompositeOf reports whether v is a composite literal T{...} with T
// matching pred.
func isCompositeOf(v ast.Expr, pred func(ast.Expr) bool) bool {
	cl, ok := v.(*ast.CompositeLit)
	return ok && cl.Type != nil && pred(cl.Type)
}

// mathFloatFuncs are math-package functions that return a float. Calls to
// them make an expression float-typed for floatcmp. Predicates like
// math.IsNaN and bit views like math.Float64bits are deliberately absent.
var mathFloatFuncs = map[string]bool{
	"Abs": true, "Acos": true, "Asin": true, "Atan": true, "Atan2": true,
	"Cbrt": true, "Ceil": true, "Copysign": true, "Cos": true, "Cosh": true,
	"Erf": true, "Erfc": true, "Exp": true, "Exp2": true, "Floor": true,
	"Gamma": true, "Hypot": true, "Inf": true, "Ldexp": true, "Log": true,
	"Log10": true, "Log2": true, "Max": true, "Min": true, "Mod": true,
	"NaN": true, "Pow": true, "Remainder": true, "Round": true, "Sin": true,
	"Sinh": true, "Sqrt": true, "Tan": true, "Tanh": true, "Trunc": true,
	"Float32frombits": true, "Float64frombits": true,
}

// isFloatExpr reports whether e is syntactically float-valued within the
// scope: a float literal, a classified ident, a float conversion, a
// float-returning math call, arithmetic over any of those, or an index
// into a float slice.
func (s *funcScope) isFloatExpr(e ast.Expr) bool {
	switch e := e.(type) {
	case *ast.BasicLit:
		// An untyped float constant with an integral value (1e9, 2.0)
		// can legally compare against integers, so only a literal with a
		// genuine fractional part is float evidence on its own.
		if e.Kind != token.FLOAT {
			return false
		}
		v, err := strconv.ParseFloat(e.Value, 64)
		//lint:ignore floatcmp exact integrality test on a parsed constant
		return err == nil && math.Trunc(v) != v
	case *ast.Ident:
		return s.floats[e.Name]
	case *ast.ParenExpr:
		return s.isFloatExpr(e.X)
	case *ast.UnaryExpr:
		if e.Op == token.ADD || e.Op == token.SUB {
			return s.isFloatExpr(e.X)
		}
	case *ast.BinaryExpr:
		switch e.Op {
		case token.ADD, token.SUB, token.MUL, token.QUO:
			return s.isFloatExpr(e.X) || s.isFloatExpr(e.Y)
		}
	case *ast.IndexExpr:
		if id, ok := e.X.(*ast.Ident); ok {
			return s.floatElems[id.Name]
		}
	case *ast.CallExpr:
		switch fn := e.Fun.(type) {
		case *ast.Ident:
			return fn.Name == "float32" || fn.Name == "float64"
		case *ast.SelectorExpr:
			if x, ok := fn.X.(*ast.Ident); ok && x.Name == "math" {
				return mathFloatFuncs[fn.Sel.Name]
			}
		}
	}
	return false
}

// exprString renders a small expression (ident or dotted selector chain)
// to a comparable string; it returns "" for anything more complex. Used
// to match append targets against later sort calls.
func exprString(e ast.Expr) string {
	switch e := e.(type) {
	case *ast.Ident:
		return e.Name
	case *ast.SelectorExpr:
		base := exprString(e.X)
		if base == "" {
			return ""
		}
		return base + "." + e.Sel.Name
	case *ast.ParenExpr:
		return exprString(e.X)
	}
	return ""
}

// pkgIn reports whether pkg equals or sits below any of the given
// slash-separated prefixes.
func pkgIn(pkg string, prefixes ...string) bool {
	for _, p := range prefixes {
		if pkg == p || strings.HasPrefix(pkg, p+"/") {
			return true
		}
	}
	return false
}

// forEachFunc invokes fn once per top-level function unit in the file: a
// function declaration, or a function literal bound at package level.
// Closures nested inside a unit belong to that unit's visit (their params
// are folded into its scope), so no node is analyzed twice.
func forEachFunc(f *ast.File, fn func(node ast.Node, body *ast.BlockStmt, sc *funcScope)) {
	for _, decl := range f.Decls {
		switch d := decl.(type) {
		case *ast.FuncDecl:
			if d.Body != nil {
				fn(d, d.Body, scopeOf(d))
			}
		case *ast.GenDecl:
			for _, spec := range d.Specs {
				vs, ok := spec.(*ast.ValueSpec)
				if !ok {
					continue
				}
				for _, v := range vs.Values {
					ast.Inspect(v, func(n ast.Node) bool {
						if fl, ok := n.(*ast.FuncLit); ok && fl.Body != nil {
							fn(fl, fl.Body, scopeOf(fl))
							return false
						}
						return true
					})
				}
			}
		}
	}
}
