package lint

import "testing"

func TestWallTime(t *testing.T) {
	cases := []struct {
		name string
		pkg  string
		src  string
		want []string
	}{
		{
			name: "time.Now in virtual-clock package",
			pkg:  "internal/catalog",
			src: `package catalog
import "time"
func f() int64 { return time.Now().Unix() }
`,
			want: []string{"3:walltime"},
		},
		{
			name: "time.Since flagged",
			pkg:  "internal/stream",
			src: `package stream
import "time"
func f(t0 time.Time) time.Duration { return time.Since(t0) }
`,
			want: []string{"3:walltime"},
		},
		{
			name: "time.Now as value flagged",
			pkg:  "internal/catalog",
			src: `package catalog
import "time"
func f(now func() time.Time) func() time.Time {
	if now == nil {
		now = time.Now
	}
	return now
}
`,
			want: []string{"5:walltime"},
		},
		{
			name: "duration arithmetic clean",
			pkg:  "internal/stream",
			src: `package stream
import "time"
func f(d time.Duration) time.Duration { return d * 2 }
`,
			want: nil,
		},
		{
			name: "simclock exempt",
			pkg:  "internal/simclock",
			src: `package simclock
import "time"
func f() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "metrics exempt",
			pkg:  "internal/metrics",
			src: `package metrics
import "time"
func f() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "cmd packages exempt",
			pkg:  "cmd/experiments",
			src: `package main
import "time"
func f() time.Time { return time.Now() }
`,
			want: nil,
		},
		{
			name: "local ident named time not flagged",
			pkg:  "internal/stream",
			src: `package stream
type clock struct{ Now func() int64 }
func f(time clock) int64 { return time.Now() }
`,
			want: nil,
		},
		{
			name: "suppressed",
			pkg:  "internal/catalog",
			src: `package catalog
import "time"
//lint:ignore walltime manifest timestamps are metadata, not measurements
func f() int64 { return time.Now().Unix() }
`,
			want: nil,
		},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			expectDiags(t, runSource(t, WallTime, tc.pkg, tc.src), tc.want...)
		})
	}
}
