// Package simclock provides the analytic virtual clock that prices I/O and
// compute so laptop-scale runs reproduce the performance *shape* of the
// paper's Polaris/Lustre environment (see DESIGN.md §2).
//
// The model is deliberately simple and fully deterministic:
//
//   - An operation on a bandwidth resource costs latency + bytes/bandwidth.
//   - A batch of n asynchronous operations with queue depth q overlaps
//     latencies: elapsed = max(ceil(n/q)·L, bytes/bw) + L. This is the
//     io_uring backend's cost.
//   - A batch of n synchronous operations serializes latencies:
//     elapsed = n·L + bytes/bw. This is the mmap page-fault backend's cost.
//   - Pipelined stages overlap: a loop of S slices across stages with
//     per-slice stage times t_1..t_k costs ≈ S·max(t_i) + (Σt_i − max t_i)
//     (steady state bound by the slowest stage, plus pipeline fill).
//
// All helpers return time.Duration virtual spans; accumulation into
// breakdown timers is the metrics package's job.
package simclock

import "time"

// BandwidthTime returns bytes/bandwidth as a duration. Non-positive inputs
// cost zero.
func BandwidthTime(bytes int64, bytesPerSec float64) time.Duration {
	if bytes <= 0 || bytesPerSec <= 0 {
		return 0
	}
	return time.Duration(float64(bytes) / bytesPerSec * float64(time.Second))
}

// OverlappedIO prices a batch of n reads issued asynchronously with the
// given queue depth: per-op latencies overlap up to the queue depth, and
// the transfer is bandwidth-bound once the pipe is full.
func OverlappedIO(n int, latency time.Duration, queueDepth int, bytes int64, bytesPerSec float64) time.Duration {
	if n <= 0 {
		return 0
	}
	if queueDepth < 1 {
		queueDepth = 1
	}
	rounds := (n + queueDepth - 1) / queueDepth
	latTerm := time.Duration(rounds) * latency
	bwTerm := BandwidthTime(bytes, bytesPerSec)
	if bwTerm > latTerm {
		latTerm = bwTerm
	}
	return latTerm + latency // +L: the final completion still pays one latency
}

// SerialIO prices a batch of n reads issued synchronously one after
// another (the mmap page-fault pattern): every operation pays its full
// latency, plus the bandwidth term.
func SerialIO(n int, latency time.Duration, bytes int64, bytesPerSec float64) time.Duration {
	if n <= 0 {
		return 0
	}
	return time.Duration(n)*latency + BandwidthTime(bytes, bytesPerSec)
}

// Pipeline prices S slices flowing through k overlapped stages whose
// per-slice costs are stageTimes. Steady-state throughput is bound by the
// slowest stage; the remaining stages contribute only the pipeline fill.
func Pipeline(slices int, stageTimes ...time.Duration) time.Duration {
	if slices <= 0 || len(stageTimes) == 0 {
		return 0
	}
	var maxStage, sum time.Duration
	for _, t := range stageTimes {
		sum += t
		if t > maxStage {
			maxStage = t
		}
	}
	return time.Duration(slices)*maxStage + (sum - maxStage)
}

// Contended scales a duration's bandwidth component for a resource shared
// by `sharers` concurrent users: the latency part is unaffected, so the
// caller passes the two components separately.
func Contended(latencyPart, bandwidthPart time.Duration, sharers int) time.Duration {
	if sharers < 1 {
		sharers = 1
	}
	return latencyPart + time.Duration(int64(bandwidthPart)*int64(sharers))
}

// Epoch returns the fixed instant (Unix epoch, UTC) that stands in for
// "now" wherever a wall-clock read leaked onto a deterministic path.
// `reprovet -fix` rewrites time.Now() to this accessor: two runs of the
// same inputs must stamp identical values, and a constant is the only
// timestamp with that property under the virtual clock. Code that needs
// a real provenance timestamp (catalog metadata, log lines) should keep
// time.Now() and carry a reviewed //lint:ignore walltime annotation
// instead.
func Epoch() time.Time {
	return time.Unix(0, 0).UTC()
}
