package simclock

import (
	"testing"
	"testing/quick"
	"time"
)

func TestBandwidthTime(t *testing.T) {
	if got := BandwidthTime(1e9, 1e9); got != time.Second {
		t.Errorf("1 GB at 1 GB/s = %v, want 1s", got)
	}
	if got := BandwidthTime(0, 1e9); got != 0 {
		t.Errorf("0 bytes = %v, want 0", got)
	}
	if got := BandwidthTime(100, 0); got != 0 {
		t.Errorf("0 bandwidth = %v, want 0", got)
	}
	if got := BandwidthTime(-5, 1e9); got != 0 {
		t.Errorf("negative bytes = %v, want 0", got)
	}
}

func TestOverlappedIOLatencyBound(t *testing.T) {
	// 100 tiny ops, queue depth 10, negligible bytes: 10 rounds of latency
	// plus the final completion latency.
	lat := time.Millisecond
	got := OverlappedIO(100, lat, 10, 100, 1e12)
	want := 11 * time.Millisecond
	if got != want {
		t.Errorf("latency-bound = %v, want %v", got, want)
	}
}

func TestOverlappedIOBandwidthBound(t *testing.T) {
	// Few large ops: the bandwidth term dominates.
	lat := time.Microsecond
	got := OverlappedIO(4, lat, 8, 4e9, 1e9) // 4 GB at 1 GB/s
	if got < 4*time.Second || got > 4*time.Second+time.Millisecond {
		t.Errorf("bandwidth-bound = %v, want ~4s", got)
	}
}

func TestOverlappedIOEdge(t *testing.T) {
	if got := OverlappedIO(0, time.Second, 4, 100, 1e9); got != 0 {
		t.Errorf("n=0 = %v, want 0", got)
	}
	// queueDepth < 1 is treated as 1 (fully serial latency).
	got := OverlappedIO(3, time.Millisecond, 0, 0, 1e9)
	if got != 4*time.Millisecond {
		t.Errorf("qd=0 = %v, want 4ms", got)
	}
}

func TestSerialIO(t *testing.T) {
	got := SerialIO(10, time.Millisecond, 1e6, 1e9)
	want := 10*time.Millisecond + time.Millisecond
	if got != want {
		t.Errorf("SerialIO = %v, want %v", got, want)
	}
	if SerialIO(0, time.Second, 100, 1) != 0 {
		t.Error("n=0 should cost 0")
	}
}

func TestSerialSlowerThanOverlapped(t *testing.T) {
	// The structural claim behind Fig. 9: for many small scattered reads,
	// the synchronous backend is strictly slower than the async one.
	n, lat, bytes, bw := 10000, 200*time.Microsecond, int64(40<<20), 2e9
	sync := SerialIO(n, lat, bytes, bw)
	async := OverlappedIO(n, lat, 64, bytes, bw)
	if sync <= async {
		t.Errorf("serial %v not slower than overlapped %v", sync, async)
	}
	if float64(sync)/float64(async) < 3 {
		t.Errorf("serial/overlapped ratio %.2f, want > 3 for scattered smalls", float64(sync)/float64(async))
	}
}

func TestPipeline(t *testing.T) {
	// 10 slices, stages 3ms (IO) and 1ms (compute): steady state bound by
	// IO, compute contributes one fill slice.
	got := Pipeline(10, 3*time.Millisecond, time.Millisecond)
	want := 31 * time.Millisecond
	if got != want {
		t.Errorf("Pipeline = %v, want %v", got, want)
	}
	if Pipeline(0, time.Second) != 0 {
		t.Error("0 slices should cost 0")
	}
	if Pipeline(5) != 0 {
		t.Error("no stages should cost 0")
	}
}

func TestPipelineNeverWorseThanSum(t *testing.T) {
	f := func(slices uint8, aMs, bMs, cMs uint16) bool {
		s := int(slices%32) + 1
		a := time.Duration(aMs) * time.Millisecond
		b := time.Duration(bMs) * time.Millisecond
		c := time.Duration(cMs) * time.Millisecond
		p := Pipeline(s, a, b, c)
		serial := time.Duration(s) * (a + b + c)
		// Overlap can only help, and must still cover the slowest stage.
		slowest := a
		if b > slowest {
			slowest = b
		}
		if c > slowest {
			slowest = c
		}
		return p <= serial && p >= time.Duration(s)*slowest
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestContended(t *testing.T) {
	lat, bw := time.Millisecond, 4*time.Millisecond
	if got := Contended(lat, bw, 1); got != 5*time.Millisecond {
		t.Errorf("1 sharer = %v", got)
	}
	if got := Contended(lat, bw, 4); got != 17*time.Millisecond {
		t.Errorf("4 sharers = %v, want 17ms", got)
	}
	if got := Contended(lat, bw, 0); got != 5*time.Millisecond {
		t.Errorf("0 sharers should clamp to 1, got %v", got)
	}
}

func TestEpochIsFixed(t *testing.T) {
	a, b := Epoch(), Epoch()
	if !a.Equal(b) {
		t.Fatalf("Epoch must be constant: %v vs %v", a, b)
	}
	if a.Unix() != 0 || a.Nanosecond() != 0 {
		t.Fatalf("Epoch must be the Unix epoch, got %v", a)
	}
	if a.Location() != time.UTC {
		t.Fatalf("Epoch must be UTC, got %v", a.Location())
	}
}
