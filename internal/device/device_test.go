package device

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestSerialForVisitsAll(t *testing.T) {
	var seen [100]bool
	(Serial{}).For(100, func(i int) { seen[i] = true })
	for i, ok := range seen {
		if !ok {
			t.Fatalf("index %d not visited", i)
		}
	}
	if (Serial{}).Workers() != 1 {
		t.Error("Serial.Workers != 1")
	}
}

func TestParallelForVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		p := NewParallel(workers)
		if p.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", p.Workers(), workers)
		}
		n := 1000
		counts := make([]int32, n)
		p.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
		for i, c := range counts {
			if c != 1 {
				t.Fatalf("workers=%d: index %d visited %d times", workers, i, c)
			}
		}
	}
}

func TestParallelForEdgeCases(t *testing.T) {
	p := NewParallel(4)
	p.For(0, func(i int) { t.Error("fn called for n=0") })
	p.For(-3, func(i int) { t.Error("fn called for n<0") })
	var called int32
	p.For(1, func(i int) { atomic.AddInt32(&called, 1) })
	if called != 1 {
		t.Errorf("n=1 called %d times", called)
	}
}

func TestNewParallelDefault(t *testing.T) {
	if NewParallel(0).Workers() < 1 {
		t.Error("default workers < 1")
	}
	if NewParallel(-5).Workers() < 1 {
		t.Error("negative workers not defaulted")
	}
}

func TestQuickParallelMatchesSerial(t *testing.T) {
	p := NewParallel(3)
	f := func(n uint8) bool {
		var sumS, sumP int64
		(Serial{}).For(int(n), func(i int) { sumS += int64(i * i) })
		p.For(int(n), func(i int) { atomic.AddInt64(&sumP, int64(i*i)) })
		return sumS == sumP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestModelPricing(t *testing.T) {
	m := GPUModel()
	if err := m.Validate(); err != nil {
		t.Fatal(err)
	}
	if err := CPUModel().Validate(); err != nil {
		t.Fatal(err)
	}
	if ht := m.HashTime(1 << 30); ht <= m.KernelLaunch {
		t.Error("hash time does not exceed launch latency for 1 GiB")
	}
	if m.HashTime(0) != m.KernelLaunch {
		t.Error("zero bytes should cost only the launch")
	}
	if m.TransferTime(0) != 0 {
		t.Error("zero transfer should be free")
	}
	// Monotonicity in size.
	if m.CompareTime(2048) < m.CompareTime(1024) {
		t.Error("compare time not monotone")
	}
	if m.NodeHashTime(100) <= 0 {
		t.Error("node hash time must be positive")
	}
}

func TestModelGapCPUvsGPU(t *testing.T) {
	// The calibrated models must preserve the ~4-orders-of-magnitude tree
	// construction gap of Fig. 8 for a multi-GB checkpoint.
	bytes := int64(7) << 30
	cpu := CPUModel().HashTime(bytes)
	gpu := GPUModel().HashTime(bytes)
	ratio := float64(cpu) / float64(gpu)
	if ratio < 1e3 || ratio > 1e5 {
		t.Errorf("CPU/GPU hash-time ratio = %.1f, want within [1e3, 1e5]", ratio)
	}
}

func TestModelValidate(t *testing.T) {
	bad := Model{Name: "bad", HashBytesPerSec: 0, CompareBytesPerSec: 1, TransferBytesPerSec: 1, NodeHashesPerSec: 1}
	if err := bad.Validate(); err == nil {
		t.Error("zero hash rate accepted")
	}
}

func TestRateTimeNeverNegative(t *testing.T) {
	if d := rateTime(-5, 1e9); d != 0 {
		t.Errorf("negative units priced %v", d)
	}
	if d := rateTime(100, 0); d != 0 {
		t.Errorf("zero rate priced %v", d)
	}
}

func BenchmarkParallelForOverhead(b *testing.B) {
	p := NewParallel(4)
	for i := 0; i < b.N; i++ {
		p.For(64, func(int) {})
	}
}
