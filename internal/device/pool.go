package device

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Pool is a persistent worker-pool Executor: workers are started once at
// construction and reused across every For call, so tree levels and
// compare batches stop paying a goroutine-spawn per kernel (the Parallel
// executor's cost). Iterations are handed out in contiguous chunks
// through an atomic cursor (chunked dynamic scheduling), which keeps
// memory access coalesced like Parallel's static blocks while letting
// fast workers steal the tail of slow ones.
//
// The submitting goroutine always participates in the loop, so For makes
// progress even when every pooled worker is busy with other tasks — which
// also makes nested For calls (a field-level loop whose body runs a
// chunk-level loop) deadlock-free. A Pool is safe for concurrent use;
// Close releases the workers and must not race with For.
type Pool struct {
	workers int
	tasks   chan *poolTask
	wg      sync.WaitGroup
	closed  sync.Once
}

var _ Executor = (*Pool)(nil)

// grainDivisor controls dynamic-scheduling granularity: each For is split
// into about 8 chunks per worker, balancing steal-ability against cursor
// contention.
const grainDivisor = 8

// poolSerialCutoff is the loop size below which For runs inline: waking
// workers costs more than a few dozen iterations of any kernel this
// repo dispatches.
const poolSerialCutoff = 32

// NewPool starts a persistent pool with the given worker count
// (workers <= 0 selects GOMAXPROCS). Call Close to release the workers
// when the pool is no longer needed; the process-wide Default pool is
// never closed.
func NewPool(workers int) *Pool {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	p := &Pool{
		workers: workers,
		tasks:   make(chan *poolTask, workers*2),
	}
	// The submitter participates in every task, so N-1 pooled helpers
	// give N-way parallelism.
	p.wg.Add(workers - 1)
	for i := 0; i < workers-1; i++ {
		//lint:ignore gocheck joined by Pool.Close via p.wg
		go p.worker()
	}
	return p
}

func (p *Pool) worker() {
	defer p.wg.Done()
	for t := range p.tasks {
		t.run()
	}
}

// Workers returns the pool's degree of parallelism.
func (p *Pool) Workers() int { return p.workers }

// Close stops the workers and waits for them to exit. For must not be
// called during or after Close.
func (p *Pool) Close() {
	p.closed.Do(func() {
		close(p.tasks)
		p.wg.Wait()
	})
}

// poolTask is one For loop in flight: an atomic claim cursor, a
// completion counter, and the iteration body.
type poolTask struct {
	fn    func(int)
	n     int64
	grain int64
	next  atomic.Int64 // next unclaimed iteration
	done  atomic.Int64 // completed iterations
	fin   chan struct{}
}

// run claims chunks until the cursor is exhausted. Whichever participant
// completes the final iteration closes fin; claimed-but-running chunks on
// other participants are what the submitter's fin wait covers.
func (t *poolTask) run() {
	for {
		start := t.next.Add(t.grain) - t.grain
		if start >= t.n {
			return
		}
		end := start + t.grain
		if end > t.n {
			end = t.n
		}
		for i := start; i < end; i++ {
			t.fn(int(i))
		}
		if t.done.Add(end-start) == t.n {
			close(t.fin)
		}
	}
}

// For invokes fn(0..n-1) across the pool, returning when all iterations
// complete.
func (p *Pool) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	if p.workers == 1 || n <= poolSerialCutoff {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	grain := int64(n) / int64(p.workers*grainDivisor)
	if grain < 1 {
		grain = 1
	}
	t := &poolTask{fn: fn, n: int64(n), grain: grain, fin: make(chan struct{})}
	// Offer the task to at most chunks-1 helpers (the submitter takes at
	// least one chunk itself). Sends are non-blocking: if the queue is
	// full of other tasks the submitter just does more of the work.
	helpers := p.workers - 1
	if maxHelpers := int((int64(n)+grain-1)/grain) - 1; helpers > maxHelpers {
		helpers = maxHelpers
	}
offer:
	for i := 0; i < helpers; i++ {
		select {
		case p.tasks <- t:
		default:
			break offer
		}
	}
	t.run()
	<-t.fin
}

// defaultPool is the process-wide shared executor behind Default.
var (
	defaultPool     *Pool
	defaultPoolOnce sync.Once
)

// Default returns the process-wide shared Pool (GOMAXPROCS workers,
// started on first use, never closed). It is the executor the compare
// layer selects when Options.Exec is nil.
func Default() *Pool {
	defaultPoolOnce.Do(func() { defaultPool = NewPool(0) })
	return defaultPool
}
