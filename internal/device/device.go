// Package device abstracts the compute device that runs the hashing and
// comparison kernels. The paper targets GPUs through Kokkos; here a device
// is (1) an Executor that provides the data-parallel for-loop the kernels
// are written against, and (2) a Model that prices kernel execution and
// host-to-device transfers on a virtual clock so that device-bound results
// (e.g. the CPU-vs-GPU tree-construction gap of Fig. 8) reproduce their
// shape on laptop hardware. See DESIGN.md §2 for the substitution note.
package device

import (
	"fmt"
	"runtime"
	"sync"
	"time"
)

// Executor runs data-parallel loops, the Kokkos parallel_for analogue.
//
// Implementations must be safe for concurrent use.
type Executor interface {
	// For invokes fn(i) for every i in [0, n), possibly concurrently.
	For(n int, fn func(i int))
	// Workers reports the degree of parallelism.
	Workers() int
}

// Serial is a single-threaded Executor, the "CPU" backend of Fig. 8.
type Serial struct{}

var _ Executor = Serial{}

// For invokes fn(0..n-1) sequentially.
func (Serial) For(n int, fn func(i int)) {
	for i := 0; i < n; i++ {
		fn(i)
	}
}

// Workers returns 1.
func (Serial) Workers() int { return 1 }

// Parallel is a worker-pool Executor, the "GPU" backend: all iterations of
// a level run concurrently, with synchronization only between levels —
// matching the paper's level-synchronous tree kernels.
type Parallel struct {
	workers int
}

var _ Executor = (*Parallel)(nil)

// NewParallel returns a Parallel executor with the given worker count;
// workers <= 0 selects GOMAXPROCS.
func NewParallel(workers int) *Parallel {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	return &Parallel{workers: workers}
}

// For invokes fn(0..n-1) across the worker pool, returning when all
// iterations complete.
func (p *Parallel) For(n int, fn func(i int)) {
	if n <= 0 {
		return
	}
	w := p.workers
	if w > n {
		w = n
	}
	if w == 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	// Static block partitioning: contiguous ranges keep memory access
	// patterns coalesced, mirroring the flattened-tree layout rationale.
	var wg sync.WaitGroup
	chunk := (n + w - 1) / w
	for start := 0; start < n; start += chunk {
		end := start + chunk
		if end > n {
			end = n
		}
		wg.Add(1)
		go func(lo, hi int) {
			defer wg.Done()
			for i := lo; i < hi; i++ {
				fn(i)
			}
		}(start, end)
	}
	wg.Wait()
}

// Workers returns the pool size.
func (p *Parallel) Workers() int { return p.workers }

// Model prices kernels and transfers on the virtual clock. Rates are
// bytes/second of input processed; KernelLaunch is the fixed per-kernel
// dispatch cost (one per tree level, per compare batch, etc.).
type Model struct {
	// Name identifies the device in reports ("CPU", "GPU").
	Name string
	// HashBytesPerSec is the error-bounded hashing rate.
	HashBytesPerSec float64
	// CompareBytesPerSec is the element-wise ε-compare rate.
	CompareBytesPerSec float64
	// TransferBytesPerSec is the host-to-device copy rate.
	TransferBytesPerSec float64
	// NodeHashesPerSec is the interior-node (digest-pair) hashing rate.
	NodeHashesPerSec float64
	// KernelLaunch is the fixed dispatch latency per kernel invocation.
	KernelLaunch time.Duration
}

// CPUModel approximates a single 2.8 GHz EPYC Milan core running the
// hashing kernel: ~1 GB/s quantize+hash, no kernel-launch cost.
func CPUModel() Model {
	return Model{
		Name:                "CPU",
		HashBytesPerSec:     1.0e9,
		CompareBytesPerSec:  2.0e9,
		TransferBytesPerSec: 24.0e9, // irrelevant on-CPU, kept for symmetry
		NodeHashesPerSec:    2.0e7,
		KernelLaunch:        0,
	}
}

// GPUModel approximates one A100: HBM2-bandwidth-bound hashing (~1.3 TB/s
// effective), PCIe-4 x16 transfers, and a ~10 µs kernel-launch latency.
// With these constants the 4-orders-of-magnitude CPU/GPU tree-construction
// gap of Fig. 8 reproduces in virtual time.
func GPUModel() Model {
	return Model{
		Name:                "GPU",
		HashBytesPerSec:     1.3e13,
		CompareBytesPerSec:  1.3e13,
		TransferBytesPerSec: 24.0e9,
		NodeHashesPerSec:    2.0e11,
		KernelLaunch:        10 * time.Microsecond,
	}
}

// HashTime prices hashing n input bytes in one kernel.
func (m Model) HashTime(bytes int64) time.Duration {
	return m.KernelLaunch + rateTime(bytes, m.HashBytesPerSec)
}

// CompareTime prices an element-wise compare over n bytes per run (2n total
// input) in one kernel.
func (m Model) CompareTime(bytes int64) time.Duration {
	return m.KernelLaunch + rateTime(2*bytes, m.CompareBytesPerSec)
}

// CompareRateTime prices the bandwidth component of an element-wise
// compare without a kernel launch — used when many chunks are batched into
// one kernel per pipeline slice, which charges the launch separately.
func (m Model) CompareRateTime(bytes int64) time.Duration {
	return rateTime(2*bytes, m.CompareBytesPerSec)
}

// TransferTime prices a host-to-device copy of n bytes.
func (m Model) TransferTime(bytes int64) time.Duration {
	return rateTime(bytes, m.TransferBytesPerSec)
}

// NodeHashTime prices hashing n interior nodes in one kernel.
func (m Model) NodeHashTime(nodes int64) time.Duration {
	return m.KernelLaunch + rateTime(nodes, m.NodeHashesPerSec)
}

// Validate reports whether the model's rates are usable.
func (m Model) Validate() error {
	if m.HashBytesPerSec <= 0 || m.CompareBytesPerSec <= 0 ||
		m.TransferBytesPerSec <= 0 || m.NodeHashesPerSec <= 0 {
		return fmt.Errorf("device: model %q has a non-positive rate", m.Name)
	}
	return nil
}

func rateTime(units int64, perSec float64) time.Duration {
	if perSec <= 0 || units <= 0 {
		return 0
	}
	return time.Duration(float64(units) / perSec * float64(time.Second))
}
