package device

import (
	"context"
	"sync/atomic"
)

// Cancelable wraps an Executor so loops dispatched through it observe a
// cancellation signal: once Done closes, remaining iterations are skipped
// (each claimed iteration still counts toward completion, so every join —
// the Pool's fin channel, Parallel's WaitGroup — closes normally and no
// goroutine leaks). The signal is a bare channel rather than a
// context.Context so no context ends up stored in a struct (the ctxflow
// lint rule); it is typically a context's Done() channel.
//
// Cancellation is best-effort and cheap: the wrapper polls Done once every
// cancelPollMask+1 iterations, so a canceled loop stops within a bounded
// number of kernel-body invocations without paying a channel select per
// element.
type Cancelable struct {
	// Done signals cancellation when closed (nil never cancels).
	Done <-chan struct{}
	// Inner runs the loop (nil selects Default()).
	Inner Executor
}

var _ Executor = Cancelable{}

// cancelPollMask makes the wrapper poll the Done channel every 64
// iterations: frequent enough that kernels stop promptly, rare enough
// that the select cost disappears against any real kernel body.
const cancelPollMask = 63

// Workers returns the inner executor's parallelism.
func (c Cancelable) Workers() int {
	if c.Inner == nil {
		return Default().Workers()
	}
	return c.Inner.Workers()
}

// For dispatches the loop through the inner executor, skipping the tail
// of the iteration space once Done closes. All iterations still complete
// from the executor's point of view, so For always returns.
func (c Cancelable) For(n int, fn func(i int)) {
	inner := c.Inner
	if inner == nil {
		inner = Default()
	}
	if c.Done == nil {
		inner.For(n, fn)
		return
	}
	select {
	case <-c.Done:
		return
	default:
	}
	var canceled atomic.Bool
	var polls atomic.Int64
	inner.For(n, func(i int) {
		if canceled.Load() {
			return
		}
		if polls.Add(1)&cancelPollMask == 0 {
			select {
			case <-c.Done:
				canceled.Store(true)
				return
			default:
			}
		}
		fn(i)
	})
}

// ForCtx invokes fn(0..n-1) across the pool like For, but stops claiming
// work once the context is canceled and returns ctx.Err(). Skipped
// iterations still count as complete internally, so the task's completion
// channel always closes and no worker or submitter blocks forever.
func (p *Pool) ForCtx(ctx context.Context, n int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	Cancelable{Done: ctx.Done(), Inner: p}.For(n, fn)
	return ctx.Err()
}

// ForCtx dispatches a cancelable loop through any executor: iterations
// stop once the context is canceled and the context's error is returned.
// The degenerate pre-canceled case runs nothing.
func ForCtx(ctx context.Context, exec Executor, n int, fn func(i int)) error {
	if err := ctx.Err(); err != nil {
		return err
	}
	Cancelable{Done: ctx.Done(), Inner: exec}.For(n, fn)
	return ctx.Err()
}
