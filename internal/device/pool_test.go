package device

import (
	"sync/atomic"
	"testing"
	"testing/quick"
)

func TestPoolForVisitsAllOnce(t *testing.T) {
	for _, workers := range []int{1, 2, 7, 16} {
		p := NewPool(workers)
		if p.Workers() != workers {
			t.Errorf("Workers() = %d, want %d", p.Workers(), workers)
		}
		// Span both the inline (n <= cutoff) and dispatched regimes.
		for _, n := range []int{1, poolSerialCutoff, poolSerialCutoff + 1, 1000} {
			counts := make([]int32, n)
			p.For(n, func(i int) { atomic.AddInt32(&counts[i], 1) })
			for i, c := range counts {
				if c != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times", workers, n, i, c)
				}
			}
		}
		p.Close()
	}
}

func TestPoolForEdgeCases(t *testing.T) {
	p := NewPool(4)
	defer p.Close()
	p.For(0, func(i int) { t.Error("fn called for n=0") })
	p.For(-3, func(i int) { t.Error("fn called for n<0") })
	var called int32
	p.For(1, func(i int) { atomic.AddInt32(&called, 1) })
	if called != 1 {
		t.Errorf("n=1 called %d times", called)
	}
}

func TestPoolReusedAcrossCalls(t *testing.T) {
	// Many sequential For calls over one pool: the regression this guards
	// is per-call worker startup state leaking between tasks.
	p := NewPool(3)
	defer p.Close()
	for round := 0; round < 200; round++ {
		var sum int64
		p.For(100, func(i int) { atomic.AddInt64(&sum, int64(i)) })
		if sum != 99*100/2 {
			t.Fatalf("round %d: sum = %d", round, sum)
		}
	}
}

func TestPoolConcurrentFor(t *testing.T) {
	// Concurrent For calls on a shared pool must each complete all their
	// own iterations even when the task queue saturates.
	p := NewPool(2)
	defer p.Close()
	done := make(chan int64)
	for g := 0; g < 8; g++ {
		go func() {
			var sum int64
			p.For(500, func(i int) { atomic.AddInt64(&sum, 1) })
			done <- sum
		}()
	}
	for g := 0; g < 8; g++ {
		if got := <-done; got != 500 {
			t.Fatalf("concurrent For completed %d/500 iterations", got)
		}
	}
}

func TestPoolNestedFor(t *testing.T) {
	// A For body that itself dispatches a For (field loop over chunk
	// loops) must not deadlock: the submitter always participates.
	p := NewPool(2)
	defer p.Close()
	var sum int64
	p.For(40, func(i int) {
		p.For(40, func(j int) { atomic.AddInt64(&sum, 1) })
	})
	if sum != 40*40 {
		t.Fatalf("nested For: %d iterations, want %d", sum, 40*40)
	}
}

func TestPoolCloseIdempotent(t *testing.T) {
	p := NewPool(2)
	p.Close()
	p.Close()
}

func TestNewPoolDefaultWorkers(t *testing.T) {
	p := NewPool(0)
	defer p.Close()
	if p.Workers() < 1 {
		t.Error("default workers < 1")
	}
}

func TestDefaultPoolShared(t *testing.T) {
	if Default() != Default() {
		t.Error("Default() is not a process-wide singleton")
	}
	var called int32
	Default().For(64, func(i int) { atomic.AddInt32(&called, 1) })
	if called != 64 {
		t.Errorf("default pool ran %d/64 iterations", called)
	}
}

func TestQuickPoolMatchesSerial(t *testing.T) {
	p := NewPool(3)
	defer p.Close()
	f := func(n uint8) bool {
		var sumS, sumP int64
		(Serial{}).For(int(n), func(i int) { sumS += int64(i * i) })
		p.For(int(n), func(i int) { atomic.AddInt64(&sumP, int64(i*i)) })
		return sumS == sumP
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func BenchmarkPoolForOverhead(b *testing.B) {
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.For(64, func(int) {})
	}
}

func BenchmarkPoolForDispatch(b *testing.B) {
	// Above the serial cutoff, so every call exercises the dispatch path.
	p := NewPool(4)
	defer p.Close()
	for i := 0; i < b.N; i++ {
		p.For(1024, func(int) {})
	}
}
