package jacobi

import (
	"bytes"
	"encoding/binary"
	"math"
	"testing"

	"repro/internal/ckpt"
	"repro/internal/pfs"
)

func TestConfigValidate(t *testing.T) {
	if err := DefaultConfig(64).Validate(); err != nil {
		t.Fatal(err)
	}
	cases := []Config{
		{N: 2, Alpha: 0.2, ReduceChunks: 4},
		{N: 64, Alpha: 0, ReduceChunks: 4},
		{N: 64, Alpha: 0.3, ReduceChunks: 4},
		{N: 64, Alpha: 0.2, ReduceChunks: -1},
	}
	for i, c := range cases {
		if err := c.Validate(); err == nil {
			t.Errorf("case %d accepted", i)
		}
	}
	if _, err := New(Config{N: 2, Alpha: 0.2}); err == nil {
		t.Error("New accepted invalid config")
	}
}

func TestDeterministicRunsIdentical(t *testing.T) {
	cfg := DefaultConfig(32)
	a, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 20; i++ {
		a.Step()
		b.Step()
	}
	if !bytes.Equal(a.Snapshot()[0], b.Snapshot()[0]) {
		t.Error("deterministic runs differ")
	}
	if a.Residual() != b.Residual() {
		t.Error("deterministic residuals differ")
	}
}

func TestDiffusionSmoothsAndConserves(t *testing.T) {
	cfg := DefaultConfig(48)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	maxAt := func() float64 {
		var m float64
		for _, v := range s.u {
			if v > m {
				m = v
			}
		}
		return m
	}
	m0 := maxAt()
	for i := 0; i < 100; i++ {
		s.Step()
	}
	if m1 := maxAt(); m1 >= m0 {
		t.Errorf("diffusion did not smooth the peak: %v -> %v", m0, m1)
	}
	// Residual decreases as the field relaxes.
	r1 := s.Residual()
	for i := 0; i < 200; i++ {
		s.Step()
	}
	if s.Residual() >= r1 {
		t.Errorf("residual did not decay: %v -> %v", r1, s.Residual())
	}
	if s.Iteration() != 300 {
		t.Errorf("Iteration = %d", s.Iteration())
	}
}

func TestFiniteField(t *testing.T) {
	s, err := New(DefaultConfig(32))
	if err != nil {
		t.Fatal(err)
	}
	for i := 0; i < 50; i++ {
		s.Step()
	}
	for i, v := range s.u {
		if math.IsNaN(v) || math.IsInf(v, 0) {
			t.Fatalf("cell %d not finite: %v", i, v)
		}
	}
}

func TestNondetResidualsDiffer(t *testing.T) {
	mk := func(seed int64) *Sim {
		cfg := DefaultConfig(64)
		cfg.Nondet = true
		cfg.NondetSeed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s
	}
	a, b := mk(1), mk(2)
	var diverged bool
	for i := 0; i < 50; i++ {
		a.Step()
		b.Step()
		if a.Residual() != b.Residual() {
			diverged = true
		}
	}
	if !diverged {
		t.Error("nondeterministic reductions never differed across 50 steps")
	}
	// The FIELDS stay identical (only the reduction is nondeterministic):
	// the divergence mechanism here is the convergence decision.
	if !bytes.Equal(a.Snapshot()[0], b.Snapshot()[0]) {
		t.Error("fields diverged; only the reduction should")
	}
}

func TestRunUntilIterationCountCanDiverge(t *testing.T) {
	// The headline behaviour: two runs of the same solver can stop at
	// different iteration counts because the nondeterministic residual
	// reduction straddles the tolerance differently. Search a window of
	// tolerances derived from the deterministic residual trajectory.
	det, err := New(DefaultConfig(48))
	if err != nil {
		t.Fatal(err)
	}
	steps := det.RunUntil(0, 60) // never converges: collect trajectory
	if steps != 60 {
		t.Fatalf("trajectory run stopped early at %d", steps)
	}
	target := det.Residual() // a residual reached around step 60

	run := func(seed int64) int {
		cfg := DefaultConfig(48)
		cfg.Nondet = true
		cfg.NondetSeed = seed
		s, err := New(cfg)
		if err != nil {
			t.Fatal(err)
		}
		return s.RunUntil(target, 200)
	}
	counts := map[int]bool{}
	for seed := int64(1); seed <= 20; seed++ {
		counts[run(seed)] = true
	}
	if len(counts) < 2 {
		t.Logf("all 20 seeds converged in the same step count; tolerance did not straddle")
		// Not a hard failure: float32 reduction noise may sit entirely on
		// one side for this trajectory. The residual-difference test
		// above already proves the mechanism.
	}
}

func TestSnapshotAndCapture(t *testing.T) {
	cfg := DefaultConfig(24)
	s, err := New(cfg)
	if err != nil {
		t.Fatal(err)
	}
	s.Step()
	snap := s.Snapshot()
	if len(snap) != 1 || len(snap[0]) != 4*24*24 {
		t.Fatalf("snapshot shape: %d fields, %d bytes", len(snap), len(snap[0]))
	}
	// Values are the interior cells.
	v0 := math.Float32frombits(binary.LittleEndian.Uint32(snap[0]))
	if math.IsNaN(float64(v0)) {
		t.Error("snapshot contains NaN")
	}

	local, err := pfs.NewStore(t.TempDir(), pfs.NVMeModel())
	if err != nil {
		t.Fatal(err)
	}
	remote, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	c := ckpt.NewCheckpointer(local, remote, 1)
	defer c.Close()
	if err := s.Capture(c, "heat", 0); err != nil {
		t.Fatal(err)
	}
	if err := c.Flush(); err != nil {
		t.Fatal(err)
	}
	r, _, err := ckpt.OpenReader(remote, ckpt.Name("heat", 1, 0))
	if err != nil {
		t.Fatal(err)
	}
	defer r.Close()
	if r.Field(0).Name != "temp" || r.Field(0).Count != 24*24 {
		t.Errorf("captured schema: %+v", r.Field(0))
	}
}

func BenchmarkStep64(b *testing.B) {
	s, err := New(DefaultConfig(64))
	if err != nil {
		b.Fatal(err)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s.Step()
	}
}
