// Package jacobi implements a second evaluation substrate: a 2-D heat
// diffusion solver (Jacobi iteration) with a nondeterministic parallel
// residual reduction. Where the HACC substrate exhibits divergence through
// chaotic N-body dynamics, this solver shows the other common mechanism
// the paper's introduction cites: a *convergence decision* driven by a
// floating-point reduction whose accumulation order varies between runs.
// Two runs compute nearly identical fields, but once the reduced residual
// straddles the tolerance differently, iteration counts — and therefore
// captured intermediate states — diverge.
package jacobi

import (
	"encoding/binary"
	"fmt"
	"math"
	"math/rand"

	"repro/internal/ckpt"
	"repro/internal/errbound"
)

// Config parameterizes a solver run.
type Config struct {
	// N is the grid extent per axis (interior points; boundaries fixed).
	N int
	// Alpha is the diffusion coefficient (0 < Alpha <= 0.25 for
	// stability of the explicit scheme).
	Alpha float64
	// Seed determines the initial temperature field (identical across
	// compared runs).
	Seed int64
	// Nondet enables nondeterministic residual reduction.
	Nondet bool
	// NondetSeed distinguishes runs (used only when Nondet is set).
	NondetSeed int64
	// ReduceChunks is the number of partial sums in the parallel
	// reduction (the "thread count"; default 16).
	ReduceChunks int
}

// DefaultConfig returns a stable configuration.
func DefaultConfig(n int) Config {
	return Config{N: n, Alpha: 0.2, Seed: 1, ReduceChunks: 16}
}

// Validate reports whether the configuration is usable.
func (c Config) Validate() error {
	if c.N < 4 {
		return fmt.Errorf("jacobi: grid %d too small", c.N)
	}
	//lint:ignore floatcmp configuration validation against the CFL stability bound
	if c.Alpha <= 0 || c.Alpha > 0.25 {
		return fmt.Errorf("jacobi: alpha %v outside (0, 0.25]", c.Alpha)
	}
	if c.ReduceChunks < 1 {
		return fmt.Errorf("jacobi: reduce chunks %d must be positive", c.ReduceChunks)
	}
	return nil
}

// Sim is one solver run.
type Sim struct {
	cfg  Config
	step int
	u    []float64 // current field, (N+2)² with boundary ring
	next []float64
	res  float64 // last residual
	rng  *rand.Rand
}

// New creates a solver with a deterministic random hot-spot initial field.
func New(cfg Config) (*Sim, error) {
	if cfg.ReduceChunks == 0 {
		cfg.ReduceChunks = 16
	}
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	side := cfg.N + 2
	s := &Sim{
		cfg:  cfg,
		u:    make([]float64, side*side),
		next: make([]float64, side*side),
	}
	if cfg.Nondet {
		s.rng = rand.New(rand.NewSource(cfg.NondetSeed))
	}
	rng := rand.New(rand.NewSource(cfg.Seed))
	for k := 0; k < 8; k++ {
		cx, cy := 1+rng.Intn(cfg.N), 1+rng.Intn(cfg.N)
		amp := 50 + rng.Float64()*100
		sigma := 2 + rng.Float64()*float64(cfg.N)/8
		for y := 1; y <= cfg.N; y++ {
			for x := 1; x <= cfg.N; x++ {
				d2 := float64((x-cx)*(x-cx) + (y-cy)*(y-cy))
				s.u[y*side+x] += amp * math.Exp(-d2/(2*sigma*sigma))
			}
		}
	}
	return s, nil
}

// Iteration returns the completed step count.
func (s *Sim) Iteration() int { return s.step }

// Residual returns the last step's reduced residual.
func (s *Sim) Residual() float64 { return s.res }

// Step advances one Jacobi sweep and computes the residual with a
// chunked parallel-style reduction. In nondeterministic mode, the chunk
// partial sums are combined in a shuffled order in float32 precision —
// the canonical nondeterministic-reduction pattern.
func (s *Sim) Step() {
	n := s.cfg.N
	side := n + 2
	a := s.cfg.Alpha
	for y := 1; y <= n; y++ {
		for x := 1; x <= n; x++ {
			i := y*side + x
			lap := s.u[i-1] + s.u[i+1] + s.u[i-side] + s.u[i+side] - 4*s.u[i]
			s.next[i] = s.u[i] + a*lap
		}
	}

	// Residual = Σ (next-u)², reduced in chunks.
	chunks := s.cfg.ReduceChunks
	partials := make([]float64, chunks)
	rows := (n + chunks - 1) / chunks
	for c := 0; c < chunks; c++ {
		lo, hi := 1+c*rows, 1+(c+1)*rows
		if hi > n+1 {
			hi = n + 1
		}
		var sum float64
		for y := lo; y < hi; y++ {
			for x := 1; x <= n; x++ {
				i := y*side + x
				d := s.next[i] - s.u[i]
				sum += d * d
			}
		}
		partials[c] = sum
	}
	if s.rng != nil {
		s.rng.Shuffle(chunks, func(i, j int) { partials[i], partials[j] = partials[j], partials[i] })
		var acc float32
		for _, p := range partials {
			acc += float32(p) // float32 tree-less accumulation, shuffled
		}
		s.res = float64(acc)
	} else {
		var acc float64
		for _, p := range partials {
			acc += p
		}
		s.res = acc
	}

	s.u, s.next = s.next, s.u
	s.step++
}

// RunUntil advances until the residual drops below tol or maxSteps is
// reached, returning the number of steps executed. Because the residual
// is reduced nondeterministically, two runs can stop at different
// iteration counts — the divergence mechanism this substrate contributes.
func (s *Sim) RunUntil(tol float64, maxSteps int) int {
	start := s.step
	for s.step-start < maxSteps {
		s.Step()
		//lint:ignore floatcmp the convergence threshold is the simulated application's own semantics
		if s.res < tol {
			break
		}
	}
	return s.step - start
}

// FieldNames lists the checkpointed variables.
var FieldNames = []string{"temp"}

// Schema returns the checkpoint schema for the solver's grid.
func Schema(n int) []ckpt.FieldSpec {
	return []ckpt.FieldSpec{{Name: "temp", DType: errbound.Float32, Count: int64(n * n)}}
}

// Snapshot captures the interior field as checkpoint buffers.
func (s *Sim) Snapshot() [][]byte {
	n := s.cfg.N
	side := n + 2
	out := make([]byte, 4*n*n)
	k := 0
	for y := 1; y <= n; y++ {
		for x := 1; x <= n; x++ {
			binary.LittleEndian.PutUint32(out[k*4:], math.Float32bits(float32(s.u[y*side+x])))
			k++
		}
	}
	return [][]byte{out}
}

// CheckpointMeta builds the checkpoint identity for the current iteration.
func (s *Sim) CheckpointMeta(runID string, rank int) ckpt.Meta {
	return ckpt.Meta{
		RunID:     runID,
		Iteration: s.step,
		Rank:      rank,
		Fields:    Schema(s.cfg.N),
	}
}

// Capture snapshots the field into a checkpointer.
func (s *Sim) Capture(c *ckpt.Checkpointer, runID string, rank int) error {
	return c.Capture(s.CheckpointMeta(runID, rank), s.Snapshot())
}
