package catalog

import (
	"context"
	"testing"

	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

// TestScanMarksDifferentialCheckpoints: a run captured through the shared
// CAS has no container files, but Scan resolves each checkpoint's leaf
// manifest and inventories it as Differential (live, not compacted) with
// its true data footprint.
func TestScanMarksDifferentialCheckpoints(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	cs, _, err := cas.Open(context.Background(), store)
	if err != nil {
		t.Fatal(err)
	}
	const elems = 4096
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: elems}}
	opts := compare.Options{Epsilon: 1e-5, ChunkSize: 4096, Exec: device.Serial{}}
	cap, err := compare.NewDiffCapturer(store, cs, opts)
	if err != nil {
		t.Fatal(err)
	}
	data := [][]byte{synth.FieldF32(elems, 1)}
	for _, it := range []int{10, 20} {
		meta := ckpt.Meta{RunID: "runD", Iteration: it, Rank: 0, Fields: fields}
		if _, err := cap.Capture(context.Background(), meta, data); err != nil {
			t.Fatal(err)
		}
	}
	// One classic checkpoint in the same run for contrast.
	seedRun(t, store, "runD", []int{30}, true)

	m, err := Scan(context.Background(), store, "runD", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %d, want 3", len(m.Checkpoints))
	}
	for i, e := range m.Checkpoints[:2] {
		if !e.Differential || e.Compacted {
			t.Errorf("entry %d: Differential=%v Compacted=%v, want differential and live", i, e.Differential, e.Compacted)
		}
		if e.Fields != 1 || e.DataBytes != 4*elems {
			t.Errorf("entry %d footprint: %+v", i, e)
		}
		if !e.HasMetadata {
			t.Errorf("entry %d: differential capture saved no metadata", i)
		}
	}
	if e := m.Checkpoints[2]; e.Differential || e.Compacted {
		t.Errorf("classic entry misclassified: %+v", e)
	}
	if m.LiveDataBytes() != 3*4*elems {
		t.Errorf("LiveDataBytes = %d, differential entries must count as live", m.LiveDataBytes())
	}

	// Round-trip: the new field survives the strict decoder.
	if err := Save(store, m); err != nil {
		t.Fatal(err)
	}
	loaded, err := Load(context.Background(), store, "runD")
	if err != nil {
		t.Fatal(err)
	}
	if !loaded.Checkpoints[0].Differential {
		t.Error("Differential flag lost in round-trip")
	}
}
