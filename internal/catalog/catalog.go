// Package catalog maintains per-run manifests: a machine-readable
// inventory of a run's checkpoint history with provenance (application,
// configuration, seeds) and per-checkpoint state (size, schema, metadata
// presence, compaction). Reproducibility studies compare *runs*, so the
// manifest is what ties a history of files back to "what produced this" —
// the provenance layer the paper's related work (§4) attributes to
// workflow systems, scoped down to what the comparator needs.
package catalog

import (
	"bytes"
	"context"
	"encoding/json"
	"fmt"
	"sort"
	"time"

	"repro/internal/cas"
	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/pfs"
)

// Manifest is one run's provenance record.
type Manifest struct {
	// RunID is the run's history prefix on the store.
	RunID string `json:"runId"`
	// App names the producing application ("hacc", "jacobi", ...).
	App string `json:"app,omitempty"`
	// Config is the application configuration, app-defined JSON.
	Config json.RawMessage `json:"config,omitempty"`
	// CreatedUnix is the manifest creation time (seconds).
	CreatedUnix int64 `json:"createdUnix"`
	// Checkpoints inventories the history, ordered by iteration and rank.
	Checkpoints []Entry `json:"checkpoints"`
}

// Entry is one checkpoint's state.
type Entry struct {
	Name        string  `json:"name"`
	Iteration   int     `json:"iteration"`
	Rank        int     `json:"rank"`
	Fields      int     `json:"fields"`
	DataBytes   int64   `json:"dataBytes"`
	Compacted   bool    `json:"compacted"`
	// Differential marks a checkpoint captured through the shared CAS: it
	// has no container file — its chunks live as extents of the store's
	// pack, addressed by the leaf manifest next to the checkpoint name.
	Differential bool `json:"differential,omitempty"`
	HasMetadata  bool `json:"hasMetadata"`
	Epsilon     float64 `json:"epsilon,omitempty"`
	ChunkSize   int     `json:"chunkSize,omitempty"`
	MetaBytes   int64   `json:"metaBytes,omitempty"`
}

// ManifestName returns the run's manifest path on the store.
func ManifestName(runID string) string { return runID + "/manifest.json" }

// Scan builds a manifest from the store's current contents: both live
// checkpoints and compacted (metadata-only) ones are inventoried.
// Cancellation is observed between checkpoints.
func Scan(ctx context.Context, store *pfs.Store, runID string, now func() time.Time) (*Manifest, error) {
	if now == nil {
		//lint:ignore walltime manifest creation timestamps are run metadata, not priced measurements; callers inject a fixed clock for reproducible manifests
		now = time.Now
	}
	live, err := ckpt.History(store, runID)
	if err != nil {
		return nil, err
	}
	withMeta, err := compare.MetadataHistory(store, runID)
	if err != nil {
		return nil, err
	}
	names := map[string]bool{}
	for _, n := range live {
		names[n] = true
	}
	for _, n := range withMeta {
		names[n] = true
	}
	if len(names) == 0 {
		return nil, fmt.Errorf("catalog: run %q has no checkpoints", runID)
	}
	m := &Manifest{RunID: runID, CreatedUnix: now().Unix()}
	for name := range names {
		if err := ctx.Err(); err != nil {
			return nil, err
		}
		_, it, rank, ok := ckpt.ParseName(name)
		if !ok {
			continue
		}
		e := Entry{Name: name, Iteration: it, Rank: rank}
		if r, _, err := ckpt.OpenReader(store, name); err == nil {
			e.Fields = r.NumFields()
			e.DataBytes = r.Meta().TotalBytes()
			r.Close()
		} else if man, _, err := cas.LoadManifest(ctx, store, name); err == nil {
			// No container, but a leaf manifest: a differential capture —
			// fully recoverable from the shared pack, not compacted.
			e.Differential = true
			e.Fields = len(man.Fields)
			e.DataBytes = man.TotalBytes()
		} else {
			e.Compacted = true
		}
		if meta, _, _, err := compare.LoadMetadata(ctx, store, name); err == nil {
			e.HasMetadata = true
			e.Epsilon = meta.Epsilon
			e.MetaBytes = meta.Bytes()
			if len(meta.Fields) > 0 {
				e.ChunkSize = meta.Fields[0].Tree.ChunkSize()
				if e.Compacted {
					e.Fields = len(meta.Fields)
					for _, f := range meta.Fields {
						e.DataBytes += f.Tree.DataLen()
					}
				}
			}
		}
		m.Checkpoints = append(m.Checkpoints, e)
	}
	sort.Slice(m.Checkpoints, func(a, b int) bool {
		ca, cb := m.Checkpoints[a], m.Checkpoints[b]
		if ca.Iteration != cb.Iteration {
			return ca.Iteration < cb.Iteration
		}
		return ca.Rank < cb.Rank
	})
	return m, nil
}

// SetApp records the producing application and its configuration.
func (m *Manifest) SetApp(app string, config any) error {
	raw, err := json.Marshal(config)
	if err != nil {
		return fmt.Errorf("catalog: marshal config: %w", err)
	}
	m.App = app
	m.Config = raw
	return nil
}

// TotalDataBytes sums the (original) data footprint of the history.
func (m *Manifest) TotalDataBytes() int64 {
	var t int64
	for _, e := range m.Checkpoints {
		t += e.DataBytes
	}
	return t
}

// LiveDataBytes sums only non-compacted checkpoints.
func (m *Manifest) LiveDataBytes() int64 {
	var t int64
	for _, e := range m.Checkpoints {
		if !e.Compacted {
			t += e.DataBytes
		}
	}
	return t
}

// Save writes the manifest onto the store.
func Save(store *pfs.Store, m *Manifest) error {
	data, err := json.MarshalIndent(m, "", "  ")
	if err != nil {
		return fmt.Errorf("catalog: marshal manifest: %w", err)
	}
	w, err := store.Create(ManifestName(m.RunID))
	if err != nil {
		return err
	}
	if _, err := w.Write(data); err != nil {
		w.Close()
		return err
	}
	return w.Close()
}

// Load reads a run's manifest from the store.
func Load(ctx context.Context, store *pfs.Store, runID string) (*Manifest, error) {
	data, _, err := store.ReadFileFull(ctx, ManifestName(runID), 0)
	if err != nil {
		return nil, err
	}
	var m Manifest
	dec := json.NewDecoder(bytes.NewReader(data))
	dec.DisallowUnknownFields()
	if err := dec.Decode(&m); err != nil {
		return nil, fmt.Errorf("catalog: parse manifest for %q: %w", runID, err)
	}
	if m.RunID != runID {
		return nil, fmt.Errorf("catalog: manifest names run %q, expected %q", m.RunID, runID)
	}
	return &m, nil
}

// SameProvenance reports whether two manifests describe comparable runs:
// same application, same configuration, and checkpoint inventories aligned
// by (iteration, rank) with matching schemas.
func SameProvenance(a, b *Manifest) (bool, string) {
	if a.App != b.App {
		return false, fmt.Sprintf("apps differ: %q vs %q", a.App, b.App)
	}
	if !bytes.Equal(a.Config, b.Config) {
		return false, "configurations differ"
	}
	if len(a.Checkpoints) != len(b.Checkpoints) {
		return false, fmt.Sprintf("history lengths differ: %d vs %d", len(a.Checkpoints), len(b.Checkpoints))
	}
	for i := range a.Checkpoints {
		ea, eb := a.Checkpoints[i], b.Checkpoints[i]
		if ea.Iteration != eb.Iteration || ea.Rank != eb.Rank {
			return false, fmt.Sprintf("entry %d misaligned: iter/rank (%d,%d) vs (%d,%d)",
				i, ea.Iteration, ea.Rank, eb.Iteration, eb.Rank)
		}
		if ea.Fields != eb.Fields || ea.DataBytes != eb.DataBytes {
			return false, fmt.Sprintf("entry %d schema mismatch", i)
		}
	}
	return true, ""
}
