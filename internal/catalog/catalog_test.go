package catalog

import (
	"context"
	"strings"
	"testing"
	"time"

	"repro/internal/ckpt"
	"repro/internal/compare"
	"repro/internal/device"
	"repro/internal/errbound"
	"repro/internal/pfs"
	"repro/internal/synth"
)

func fixedNow() time.Time { return time.Unix(1_700_000_000, 0) }

func seedRun(t *testing.T, store *pfs.Store, runID string, iters []int, withMeta bool) {
	t.Helper()
	const elems = 4096
	fields := []ckpt.FieldSpec{{Name: "x", DType: errbound.Float32, Count: elems}}
	opts := compare.Options{Epsilon: 1e-5, ChunkSize: 4096, Exec: device.Serial{}}
	for _, it := range iters {
		meta := ckpt.Meta{RunID: runID, Iteration: it, Rank: 0, Fields: fields}
		if _, err := ckpt.WriteCheckpoint(store, meta, [][]byte{synth.FieldF32(elems, int64(it))}); err != nil {
			t.Fatal(err)
		}
		if withMeta {
			if _, _, err := compare.BuildAndSave(context.Background(), store, ckpt.Name(runID, it, 0), opts); err != nil {
				t.Fatal(err)
			}
		}
	}
}

func TestScanInventoriesHistory(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	seedRun(t, store, "runX", []int{10, 20, 30}, true)
	m, err := Scan(context.Background(), store, "runX", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checkpoints) != 3 {
		t.Fatalf("checkpoints = %d", len(m.Checkpoints))
	}
	if m.CreatedUnix != fixedNow().Unix() {
		t.Errorf("CreatedUnix = %d", m.CreatedUnix)
	}
	for i, e := range m.Checkpoints {
		if e.Iteration != (i+1)*10 || e.Rank != 0 {
			t.Errorf("entry %d = %+v", i, e)
		}
		if !e.HasMetadata || e.Epsilon != 1e-5 || e.ChunkSize != 4096 {
			t.Errorf("entry %d metadata: %+v", i, e)
		}
		if e.Compacted || e.DataBytes != 4*4096 || e.Fields != 1 {
			t.Errorf("entry %d data: %+v", i, e)
		}
	}
	if m.TotalDataBytes() != 3*4*4096 || m.LiveDataBytes() != 3*4*4096 {
		t.Errorf("byte totals: %d / %d", m.TotalDataBytes(), m.LiveDataBytes())
	}
}

func TestScanSeesCompactedCheckpoints(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	seedRun(t, store, "runC", []int{10, 20}, true)
	opts := compare.Options{Epsilon: 1e-5, ChunkSize: 4096, Exec: device.Serial{}}
	if _, err := compare.CompactHistory(context.Background(), store, "runC", 1, opts); err != nil {
		t.Fatal(err)
	}
	m, err := Scan(context.Background(), store, "runC", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(m.Checkpoints) != 2 {
		t.Fatalf("checkpoints = %+v", m.Checkpoints)
	}
	first := m.Checkpoints[0]
	if !first.Compacted || !first.HasMetadata {
		t.Errorf("compacted entry: %+v", first)
	}
	// Original data size is recovered from the metadata geometry.
	if first.DataBytes != 4*4096 || first.Fields != 1 {
		t.Errorf("compacted entry geometry: %+v", first)
	}
	if m.LiveDataBytes() != 4*4096 {
		t.Errorf("LiveDataBytes = %d", m.LiveDataBytes())
	}
	if m.TotalDataBytes() != 2*4*4096 {
		t.Errorf("TotalDataBytes = %d", m.TotalDataBytes())
	}
}

func TestScanEmptyRunRejected(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Scan(context.Background(), store, "ghost", fixedNow); err == nil {
		t.Error("empty run accepted")
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	seedRun(t, store, "runM", []int{5}, false)
	m, err := Scan(context.Background(), store, "runM", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	type appCfg struct {
		Particles int   `json:"particles"`
		Seed      int64 `json:"seed"`
	}
	if err := m.SetApp("hacc", appCfg{Particles: 1000, Seed: 7}); err != nil {
		t.Fatal(err)
	}
	if err := Save(store, m); err != nil {
		t.Fatal(err)
	}
	got, err := Load(context.Background(), store, "runM")
	if err != nil {
		t.Fatal(err)
	}
	if got.App != "hacc" || got.RunID != "runM" || len(got.Checkpoints) != 1 {
		t.Errorf("loaded = %+v", got)
	}
	if !strings.Contains(string(got.Config), `"particles": 1000`) &&
		!strings.Contains(string(got.Config), `"particles":1000`) {
		t.Errorf("config = %s", got.Config)
	}
	// Wrong run rejected.
	if _, err := Load(context.Background(), store, "other"); err == nil {
		t.Error("missing manifest accepted")
	}
}

func TestManifestNotListedAsCheckpoint(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	seedRun(t, store, "runL", []int{1}, false)
	m, err := Scan(context.Background(), store, "runL", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if err := Save(store, m); err != nil {
		t.Fatal(err)
	}
	// Rescanning after the manifest exists must not inventory it.
	m2, err := Scan(context.Background(), store, "runL", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	if len(m2.Checkpoints) != 1 {
		t.Errorf("rescan inventoried %d entries", len(m2.Checkpoints))
	}
}

func TestSameProvenance(t *testing.T) {
	store, err := pfs.NewStore(t.TempDir(), pfs.LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	seedRun(t, store, "pA", []int{10, 20}, false)
	seedRun(t, store, "pB", []int{10, 20}, false)
	seedRun(t, store, "pC", []int{10}, false)

	ma, err := Scan(context.Background(), store, "pA", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	mb, err := Scan(context.Background(), store, "pB", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	mc, err := Scan(context.Background(), store, "pC", fixedNow)
	if err != nil {
		t.Fatal(err)
	}
	ma.SetApp("hacc", map[string]int{"n": 1})
	mb.SetApp("hacc", map[string]int{"n": 1})
	if ok, why := SameProvenance(ma, mb); !ok {
		t.Errorf("aligned runs rejected: %s", why)
	}
	if ok, _ := SameProvenance(ma, mc); ok {
		t.Error("different history lengths accepted")
	}
	mb.SetApp("jacobi", map[string]int{"n": 1})
	if ok, _ := SameProvenance(ma, mb); ok {
		t.Error("different apps accepted")
	}
	mb.SetApp("hacc", map[string]int{"n": 2})
	if ok, _ := SameProvenance(ma, mb); ok {
		t.Error("different configs accepted")
	}
}
