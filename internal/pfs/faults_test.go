package pfs

import (
	"errors"
	"testing"
)

var errInjected = errors.New("injected storage fault")

func TestFailReadsFiresOnce(t *testing.T) {
	s := newTestStore(t)
	writeTestFile(t, s, "fr.dat", make([]byte, 16<<10))
	f, err := s.Open("fr.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)

	s.FailReads(1, errInjected)
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("first read should pass: %v", err)
	}
	if _, _, err := f.ReadAt(buf, 0); !errors.Is(err, errInjected) {
		t.Fatalf("second read error = %v", err)
	}
	// Fault consumed: subsequent reads succeed.
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatalf("post-fault read failed: %v", err)
	}
}

func TestFailWritesFiresImmediately(t *testing.T) {
	s := newTestStore(t)
	w, err := s.Create("fw.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer w.Close()
	s.FailWrites(0, errInjected)
	if _, err := w.Write([]byte("boom")); !errors.Is(err, errInjected) {
		t.Fatalf("write error = %v", err)
	}
	if _, err := w.Write([]byte("ok")); err != nil {
		t.Fatalf("post-fault write failed: %v", err)
	}
}

func TestDisarmFaults(t *testing.T) {
	s := newTestStore(t)
	s.FailReads(0, errInjected)
	s.FailReads(0, nil) // disarm
	writeTestFile(t, s, "dz.dat", make([]byte, 4096))
	f, err := s.Open("dz.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if _, _, err := f.ReadAt(make([]byte, 16), 0); err != nil {
		t.Fatalf("disarmed fault still fired: %v", err)
	}
}
