package pfs

import (
	"context"
	"bytes"
	"errors"
	"io"
	"testing"
	"time"
)

func newTestStore(t *testing.T) *Store {
	t.Helper()
	s, err := NewStore(t.TempDir(), LustreModel())
	if err != nil {
		t.Fatal(err)
	}
	return s
}

func writeTestFile(t *testing.T, s *Store, name string, data []byte) {
	t.Helper()
	w, err := s.Create(name)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write(data); err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
}

func TestModels(t *testing.T) {
	for _, m := range []CostModel{LustreModel(), NVMeModel()} {
		if err := m.Validate(); err != nil {
			t.Errorf("%s: %v", m.Name, err)
		}
	}
	bad := LustreModel()
	bad.PageSize = 0
	if err := bad.Validate(); err == nil {
		t.Error("zero page size accepted")
	}
	bad2 := LustreModel()
	bad2.ReadBytesPerSec = 0
	if err := bad2.Validate(); err == nil {
		t.Error("zero bandwidth accepted")
	}
}

func TestWriteReadRoundTrip(t *testing.T) {
	s := newTestStore(t)
	data := bytes.Repeat([]byte("0123456789abcdef"), 1024) // 16 KiB
	writeTestFile(t, s, "run1/ckpt.dat", data)

	f, err := s.Open("run1/ckpt.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	if f.Size() != int64(len(data)) {
		t.Errorf("Size = %d, want %d", f.Size(), len(data))
	}
	buf := make([]byte, len(data))
	n, _, err := f.ReadAt(buf, 0)
	if err != nil && !errors.Is(err, io.EOF) {
		t.Fatal(err)
	}
	if n != len(data) || !bytes.Equal(buf, data) {
		t.Error("read data differs from written data")
	}
	if f.Name() != "run1/ckpt.dat" {
		t.Errorf("Name = %q", f.Name())
	}
}

func TestColdThenWarmCost(t *testing.T) {
	s := newTestStore(t)
	data := make([]byte, 64<<10)
	writeTestFile(t, s, "a.dat", data)
	s.Evict("a.dat") // cold cache, as every experiment starts

	f, err := s.Open("a.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 8192)

	_, cold, err := f.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if cold.Ops != 1 || cold.Bytes != 8192 || cold.CachedBytes != 0 {
		t.Errorf("cold cost = %+v", cold)
	}

	_, warm, err := f.ReadAt(buf, 0)
	if err != nil {
		t.Fatal(err)
	}
	if warm.CachedOps != 1 || warm.CachedBytes != 8192 || warm.Bytes != 0 {
		t.Errorf("warm cost = %+v", warm)
	}

	// Pricing: cold must be far more expensive than warm.
	m := s.Model()
	if m.SerialReadTime(cold, 1) <= m.SerialReadTime(warm, 1) {
		t.Error("cold read not more expensive than warm read")
	}
}

func TestPartialCachedRead(t *testing.T) {
	s := newTestStore(t)
	data := make([]byte, 32<<10)
	writeTestFile(t, s, "b.dat", data)
	s.Evict("b.dat")
	f, err := s.Open("b.dat")
	if err != nil {
		t.Fatal(err)
	}
	defer f.Close()
	buf := make([]byte, 4096)
	if _, _, err := f.ReadAt(buf, 0); err != nil {
		t.Fatal(err)
	}
	// Read overlapping the now-cached first page plus one cold page.
	big := make([]byte, 8192)
	_, c, err := f.ReadAt(big, 0)
	if err != nil {
		t.Fatal(err)
	}
	if c.Bytes != 4096 || c.CachedBytes != 4096 {
		t.Errorf("partial cost = %+v, want 4096 cold + 4096 cached", c)
	}
	if c.Ops != 1 {
		t.Errorf("partial read ops = %d, want 1 (still one op)", c.Ops)
	}
}

func TestEvict(t *testing.T) {
	s := newTestStore(t)
	writeTestFile(t, s, "c.dat", make([]byte, 16<<10))
	if s.ResidentPages("c.dat") == 0 {
		t.Error("write did not populate cache")
	}
	s.Evict("c.dat")
	if s.ResidentPages("c.dat") != 0 {
		t.Error("Evict left resident pages")
	}
	writeTestFile(t, s, "d.dat", make([]byte, 4096))
	s.EvictAll()
	if s.ResidentPages("d.dat") != 0 {
		t.Error("EvictAll left resident pages")
	}
}

func TestPathValidation(t *testing.T) {
	s := newTestStore(t)
	for _, bad := range []string{"../escape", "/abs/path", "."} {
		if _, err := s.Create(bad); err == nil {
			t.Errorf("Create(%q) accepted", bad)
		}
		if _, err := s.Open(bad); err == nil {
			t.Errorf("Open(%q) accepted", bad)
		}
	}
}

func TestOpenMissing(t *testing.T) {
	s := newTestStore(t)
	if _, err := s.Open("nope.dat"); err == nil {
		t.Error("opening a missing file succeeded")
	}
}

func TestRemoveAndList(t *testing.T) {
	s := newTestStore(t)
	writeTestFile(t, s, "x/one.dat", []byte("1"))
	writeTestFile(t, s, "x/two.dat", []byte("2"))
	writeTestFile(t, s, "y/three.dat", []byte("3"))
	names, err := s.List("x/")
	if err != nil {
		t.Fatal(err)
	}
	if len(names) != 2 || names[0] != "x/one.dat" || names[1] != "x/two.dat" {
		t.Errorf("List = %v", names)
	}
	if err := s.Remove("x/one.dat"); err != nil {
		t.Fatal(err)
	}
	if err := s.Remove("x/one.dat"); err == nil {
		t.Error("double remove succeeded")
	}
	names, _ = s.List("x/")
	if len(names) != 1 {
		t.Errorf("after remove List = %v", names)
	}
}

func TestClosedHandles(t *testing.T) {
	s := newTestStore(t)
	writeTestFile(t, s, "e.dat", make([]byte, 10))
	f, err := s.Open("e.dat")
	if err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Fatal(err)
	}
	if err := f.Close(); err != nil {
		t.Error("double close errored")
	}
	if _, _, err := f.ReadAt(make([]byte, 1), 0); !errors.Is(err, ErrClosed) {
		t.Errorf("read after close = %v", err)
	}
	w, err := s.Create("f.dat")
	if err != nil {
		t.Fatal(err)
	}
	if err := w.Close(); err != nil {
		t.Fatal(err)
	}
	if _, err := w.Write([]byte("x")); !errors.Is(err, ErrClosed) {
		t.Errorf("write after close = %v", err)
	}
	if err := w.Close(); err != nil {
		t.Error("double close errored")
	}
}

func TestSharers(t *testing.T) {
	s := newTestStore(t)
	if s.Sharers() != 1 {
		t.Errorf("default sharers = %d", s.Sharers())
	}
	s.SetSharers(8)
	if s.Sharers() != 8 {
		t.Errorf("sharers = %d", s.Sharers())
	}
	s.SetSharers(0)
	if s.Sharers() != 1 {
		t.Errorf("sharers clamped = %d", s.Sharers())
	}
	// Contention scales the uncached bandwidth term.
	m := s.Model()
	c := Cost{Ops: 1, Bytes: 1 << 30}
	if m.BandwidthTerm(c, 8) <= m.BandwidthTerm(c, 1) {
		t.Error("contention did not slow the bandwidth term")
	}
	if m.BandwidthTerm(c, 0) != m.BandwidthTerm(c, 1) {
		t.Error("sharers=0 not clamped in pricing")
	}
}

func TestCostAccumulation(t *testing.T) {
	var c Cost
	c.Add(Cost{Ops: 1, Bytes: 100})
	c.Add(Cost{CachedOps: 2, CachedBytes: 50})
	if c.Ops != 1 || c.CachedOps != 2 || c.Bytes != 100 || c.CachedBytes != 50 {
		t.Errorf("cost = %+v", c)
	}
	if c.TotalBytes() != 150 {
		t.Errorf("TotalBytes = %d", c.TotalBytes())
	}
}

func TestWriteTimePricing(t *testing.T) {
	m := LustreModel()
	c := Cost{Ops: 10, Bytes: 1 << 20}
	wt := m.WriteTime(c, 1)
	if wt < 10*m.WriteLatency {
		t.Errorf("write time %v below latency floor", wt)
	}
	if m.WriteTime(c, 4) <= wt {
		t.Error("contended write not slower")
	}
	if m.WriteTime(c, 0) != wt {
		t.Error("sharers=0 not clamped")
	}
}

func TestReadFileFull(t *testing.T) {
	s := newTestStore(t)
	data := make([]byte, 100<<10)
	for i := range data {
		data[i] = byte(i)
	}
	writeTestFile(t, s, "g.dat", data)
	s.Evict("g.dat")
	got, cost, err := s.ReadFileFull(context.Background(), "g.dat", 32<<10)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(got, data) {
		t.Error("content mismatch")
	}
	if cost.TotalBytes() != int64(len(data)) {
		t.Errorf("cost bytes = %d, want %d", cost.TotalBytes(), len(data))
	}
	if cost.Ops != 4 { // ceil(100K/32K) blocks, all cold
		t.Errorf("ops = %d, want 4", cost.Ops)
	}
	// Default block size path and missing file path.
	if _, _, err := s.ReadFileFull(context.Background(), "missing.dat", 0); err == nil {
		t.Error("missing file accepted")
	}
}

func TestScatteredVsSequentialShape(t *testing.T) {
	// The core PFS property the experiments rely on: reading the same
	// total bytes as many scattered 4 KB ops is priced far above one
	// sequential sweep.
	m := LustreModel()
	scattered := Cost{Ops: 1024, Bytes: 4 << 20}
	sequential := Cost{Ops: 4, Bytes: 4 << 20}
	ratio := float64(m.SerialReadTime(scattered, 1)) / float64(m.SerialReadTime(sequential, 1))
	if ratio < 10 {
		t.Errorf("scattered/sequential = %.1f, want >= 10", ratio)
	}
}

func TestLatencyTermZeroCost(t *testing.T) {
	m := LustreModel()
	if m.LatencyTerm(Cost{}) != 0 || m.BandwidthTerm(Cost{}, 4) != 0 {
		t.Error("zero cost priced nonzero")
	}
	if m.SerialReadTime(Cost{}, 1) != time.Duration(0) {
		t.Error("zero cost read time nonzero")
	}
}

func TestStripingTargetOf(t *testing.T) {
	st := Striping{Targets: 4, StripeBytes: 1 << 20}
	if !st.Enabled() {
		t.Fatal("4-target striping should be enabled")
	}
	cases := []struct {
		off  int64
		want int
	}{
		{0, 0},
		{(1 << 20) - 1, 0},
		{1 << 20, 1},
		{3 << 20, 3},
		{4 << 20, 0}, // round-robin wraps
		{9 << 20, 1},
		{-5, 0}, // negative offsets clamp to the first stripe
	}
	for _, c := range cases {
		if got := st.TargetOf(c.off); got != c.want {
			t.Errorf("TargetOf(%d) = %d, want %d", c.off, got, c.want)
		}
	}
	// Disabled layouts map everything to target 0.
	for _, st := range []Striping{{}, {Targets: 1, StripeBytes: 1 << 20}} {
		if st.Enabled() {
			t.Errorf("%+v should be disabled", st)
		}
		if got := st.TargetOf(42 << 20); got != 0 {
			t.Errorf("disabled TargetOf = %d, want 0", got)
		}
	}
}

func TestStripingValidate(t *testing.T) {
	if err := (Striping{Targets: 8}).Validate(); err == nil {
		t.Fatal("multi-target striping without a stripe width should be rejected")
	}
	if err := (Striping{Targets: 8, StripeBytes: 4096}).Validate(); err != nil {
		t.Fatalf("valid layout rejected: %v", err)
	}
	s := newTestStore(t)
	if err := s.SetStriping(Striping{Targets: 8}); err == nil {
		t.Fatal("SetStriping should reject an invalid layout")
	}
	if s.Striping().Targets != 0 {
		t.Fatal("rejected layout must leave the store unchanged")
	}
	if err := s.SetStriping(Striping{Targets: 8, StripeBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	if got := s.Striping().Targets; got != 8 {
		t.Fatalf("Striping().Targets = %d, want 8", got)
	}
}

func TestTargetSharersFallback(t *testing.T) {
	s := newTestStore(t)
	s.SetSharers(3)
	// No table: every target falls back to the store-wide factor.
	if got := s.TargetSharers(5); got != 3 {
		t.Fatalf("TargetSharers without table = %d, want 3", got)
	}
	s.SetTargetSharers([]int{1, 4, 0})
	if got := s.TargetSharers(0); got != 1 {
		t.Fatalf("TargetSharers(0) = %d, want 1", got)
	}
	if got := s.TargetSharers(1); got != 4 {
		t.Fatalf("TargetSharers(1) = %d, want 4", got)
	}
	// Zero entries and out-of-range targets fall back.
	if got := s.TargetSharers(2); got != 3 {
		t.Fatalf("TargetSharers(2) = %d, want 3 (fallback)", got)
	}
	if got := s.TargetSharers(99); got != 3 {
		t.Fatalf("TargetSharers(99) = %d, want 3 (fallback)", got)
	}
	// The table is copied, not aliased.
	tbl := []int{7}
	s.SetTargetSharers(tbl)
	tbl[0] = 1
	if got := s.TargetSharers(0); got != 7 {
		t.Fatalf("TargetSharers(0) = %d, want 7 (copied table)", got)
	}
	// Installing a new layout clears the table.
	if err := s.SetStriping(Striping{Targets: 2, StripeBytes: 4096}); err != nil {
		t.Fatal(err)
	}
	if got := s.TargetSharers(0); got != 3 {
		t.Fatalf("TargetSharers after SetStriping = %d, want 3 (cleared)", got)
	}
}
