// Package pfs simulates the parallel file system (Lustre on Polaris in the
// paper) that checkpoints and Merkle metadata live on.
//
// Files are stored on the real local filesystem under a root directory, so
// all data paths are genuinely exercised; alongside every operation the
// store returns a Cost that a cost model prices on the virtual clock. The
// model captures the two properties of a PFS that drive the paper's
// trade-offs and that a laptop's page cache would otherwise hide:
//
//   - per-operation latency dominates scattered small reads;
//   - bandwidth is shared, so concurrent processes contend.
//
// A page cache tracks residency at page granularity: reads and writes
// populate it, Evict (the "vmtouch -e" of the paper's methodology, §3.3.4)
// drops a file's pages so every experiment starts cold.
package pfs

import (
	"context"
	"errors"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"sort"
	"strings"
	"sync"
	"time"

	"repro/internal/simclock"
)

// ErrClosed is returned by operations on a closed file or writer.
var ErrClosed = errors.New("pfs: closed")

// CostModel prices storage operations on the virtual clock.
type CostModel struct {
	// Name identifies the tier ("lustre", "nvme").
	Name string
	// ReadLatency is the per-operation latency of an uncached read.
	ReadLatency time.Duration
	// WriteLatency is the per-operation latency of a write.
	WriteLatency time.Duration
	// ReadBytesPerSec is the uncached read bandwidth of one synchronous
	// sequential stream (client-pipeline limited on a PFS).
	ReadBytesPerSec float64
	// ScatteredBytesPerSec is the aggregate bandwidth reachable by a deep
	// asynchronous queue of scattered reads, which stripe across a PFS's
	// object storage targets and exceed a single stream. Zero means no
	// boost (same as ReadBytesPerSec).
	ScatteredBytesPerSec float64
	// WriteBytesPerSec is the write bandwidth.
	WriteBytesPerSec float64
	// CachedLatency is the per-operation latency of a page-cache hit.
	CachedLatency time.Duration
	// CachedBytesPerSec is the page-cache copy bandwidth.
	CachedBytesPerSec float64
	// PageSize is the cache granularity in bytes.
	PageSize int
}

// LustreModel approximates the paper's Lustre PFS: high per-RPC latency for
// scattered reads, ~8 GB/s of shared sequential bandwidth per client group.
func LustreModel() CostModel {
	return CostModel{
		Name:                 "lustre",
		ReadLatency:          100 * time.Microsecond,
		WriteLatency:         150 * time.Microsecond,
		ReadBytesPerSec:      5.3e9,
		ScatteredBytesPerSec: 14e9,
		WriteBytesPerSec:     6e9,
		CachedLatency:        2 * time.Microsecond,
		CachedBytesPerSec:    20e9,
		PageSize:             4096,
	}
}

// NVMeModel approximates node-local NVMe, the first checkpoint tier.
func NVMeModel() CostModel {
	return CostModel{
		Name:                 "nvme",
		ReadLatency:          20 * time.Microsecond,
		WriteLatency:         25 * time.Microsecond,
		ReadBytesPerSec:      6e9,
		ScatteredBytesPerSec: 5e9,
		WriteBytesPerSec:     3e9,
		CachedLatency:        time.Microsecond,
		CachedBytesPerSec:    20e9,
		PageSize:             4096,
	}
}

// Validate reports whether the model is usable.
func (m CostModel) Validate() error {
	if m.PageSize <= 0 {
		return fmt.Errorf("pfs: model %q: page size must be positive", m.Name)
	}
	if m.ReadBytesPerSec <= 0 || m.WriteBytesPerSec <= 0 || m.CachedBytesPerSec <= 0 {
		return fmt.Errorf("pfs: model %q: bandwidths must be positive", m.Name)
	}
	return nil
}

// Cost is the resource consumption of one or more storage operations,
// split into cached and uncached components so backends can price latency
// overlap and bandwidth contention separately.
type Cost struct {
	Ops         int   // uncached operations
	CachedOps   int   // page-cache-hit operations
	Bytes       int64 // uncached bytes moved
	CachedBytes int64 // cached bytes moved
}

// Add accumulates another cost.
func (c *Cost) Add(o Cost) {
	c.Ops += o.Ops
	c.CachedOps += o.CachedOps
	c.Bytes += o.Bytes
	c.CachedBytes += o.CachedBytes
}

// TotalBytes returns cached plus uncached bytes.
func (c Cost) TotalBytes() int64 { return c.Bytes + c.CachedBytes }

// LatencyTerm returns the summed per-op latency of the cost under the
// model, with every operation serialized (no overlap).
func (m CostModel) LatencyTerm(c Cost) time.Duration {
	return time.Duration(c.Ops)*m.ReadLatency + time.Duration(c.CachedOps)*m.CachedLatency
}

// BandwidthTerm returns the transfer time of the cost's bytes with the
// single-stream bandwidth shared by `sharers` concurrent processes.
func (m CostModel) BandwidthTerm(c Cost, sharers int) time.Duration {
	return m.bandwidthTerm(c, sharers, m.ReadBytesPerSec)
}

// ScatteredBandwidthTerm prices the cost's bytes at the deep-queue
// scattered-read bandwidth (OST striping), falling back to the stream
// bandwidth when the model defines no boost.
func (m CostModel) ScatteredBandwidthTerm(c Cost, sharers int) time.Duration {
	bw := m.ScatteredBytesPerSec
	if bw <= 0 {
		bw = m.ReadBytesPerSec
	}
	return m.bandwidthTerm(c, sharers, bw)
}

func (m CostModel) bandwidthTerm(c Cost, sharers int, bw float64) time.Duration {
	if sharers < 1 {
		sharers = 1
	}
	un := simclock.BandwidthTime(c.Bytes, bw/float64(sharers))
	ca := simclock.BandwidthTime(c.CachedBytes, m.CachedBytesPerSec)
	return un + ca
}

// SerialReadTime prices the cost as fully synchronous reads.
func (m CostModel) SerialReadTime(c Cost, sharers int) time.Duration {
	return m.LatencyTerm(c) + m.BandwidthTerm(c, sharers)
}

// WriteTime prices the cost as writes.
func (m CostModel) WriteTime(c Cost, sharers int) time.Duration {
	if sharers < 1 {
		sharers = 1
	}
	lat := time.Duration(c.Ops) * m.WriteLatency
	bw := simclock.BandwidthTime(c.Bytes+c.CachedBytes, m.WriteBytesPerSec/float64(sharers))
	return lat + bw
}

// Striping models a Lustre-style object layout: a file's byte range is
// split into StripeBytes-sized stripes laid out round-robin across
// Targets simulated object storage targets (OSTs). The metadata service
// decides the layout (this struct); the targets serve the striped reads,
// each with its own contention factor (Store.TargetSharers). The mapping
// is positional only — data still lives in one real file — but it lets
// placement-aware schedulers price reads per target instead of against
// one store-wide sharers factor.
type Striping struct {
	// Targets is the number of simulated OSTs. Values below 2 disable
	// striping (the whole store behaves as a single target 0).
	Targets int
	// StripeBytes is the stripe width. Must be positive when Targets > 1.
	StripeBytes int64
}

// Enabled reports whether the layout actually splits data across more
// than one target.
func (st Striping) Enabled() bool { return st.Targets > 1 && st.StripeBytes > 0 }

// Validate checks the layout parameters.
func (st Striping) Validate() error {
	if st.Targets > 1 && st.StripeBytes <= 0 {
		return fmt.Errorf("pfs: striping over %d targets needs a positive stripe width", st.Targets)
	}
	return nil
}

// TargetOf returns the OST index serving the stripe containing byte
// offset off. With striping disabled every offset maps to target 0.
func (st Striping) TargetOf(off int64) int {
	if !st.Enabled() {
		return 0
	}
	if off < 0 {
		off = 0
	}
	return int((off / st.StripeBytes) % int64(st.Targets))
}

// Store is one storage tier rooted at a real directory.
// It is safe for concurrent use.
type Store struct {
	root  string
	model CostModel

	mu      sync.Mutex
	cache   map[string]map[int64]struct{} // name -> resident page indices
	sharers int

	// striping is the OST layout; targetSharers[t] overrides the
	// store-wide sharers factor for reads served by target t.
	striping      Striping
	targetSharers []int

	// openHandles counts files opened and not yet closed; leak tests
	// assert it returns to zero after error paths.
	openHandles int

	// Cumulative read-operation counters (cached + uncached), the
	// ground truth benchmarks diff to show I/O dedup wins.
	statReadOps   int64
	statReadBytes int64

	// fault is the installed fault-injection hook (nil on the clean path).
	fault FaultHook
}

// FaultHook intercepts storage operations for deterministic fault
// injection; implementations live in internal/faults. A hook must be safe
// for concurrent use — the store calls it without holding its own lock.
type FaultHook interface {
	// BeforeRead may fail a read before it touches storage. A returned
	// error is wrapped with the usual "pfs: read name@off" context, so
	// retry classification survives via errors.As.
	BeforeRead(name string, off int64, n int) error
	// AfterRead observes a successful read and may corrupt p in place
	// (bit flips). The returned extra Cost is added to the read's cost —
	// a latency spike priced on the virtual clock.
	AfterRead(name string, off int64, p []byte) Cost
	// BeforeWrite may fail a write. When it returns err != nil, the
	// first keep bytes (clamped to [0, n]) are still persisted — a torn
	// write. keep is ignored when err is nil.
	BeforeWrite(name string, off int64, n int) (keep int, err error)
}

// NewStore creates (if needed) the root directory and returns a store.
func NewStore(root string, model CostModel) (*Store, error) {
	if err := model.Validate(); err != nil {
		return nil, err
	}
	if err := os.MkdirAll(root, 0o755); err != nil {
		return nil, fmt.Errorf("pfs: create root: %w", err)
	}
	return &Store{
		root:    root,
		model:   model,
		cache:   make(map[string]map[int64]struct{}),
		sharers: 1,
	}, nil
}

// Model returns the store's cost model.
func (s *Store) Model() CostModel { return s.model }

// Root returns the backing directory.
func (s *Store) Root() string { return s.root }

// SetSharers sets the number of processes assumed to contend for the
// store's bandwidth (the cluster harness calls this).
func (s *Store) SetSharers(n int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if n < 1 {
		n = 1
	}
	s.sharers = n
}

// Sharers returns the current contention factor.
func (s *Store) Sharers() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.sharers
}

// SetStriping installs an OST layout on the store and clears any
// per-target sharers table. Returns the layout's validation error, if
// any, leaving the store unchanged.
func (s *Store) SetStriping(st Striping) error {
	if err := st.Validate(); err != nil {
		return err
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	s.striping = st
	s.targetSharers = nil
	return nil
}

// Striping returns the installed OST layout (zero value when unset).
func (s *Store) Striping() Striping {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.striping
}

// SetTargetSharers installs a per-OST contention table: sharers[t] is
// the number of workers assumed to contend for target t's bandwidth.
// Entries below 1 fall back to the store-wide sharers factor, as do
// targets beyond the table. Passing nil clears the table. The slice is
// copied.
func (s *Store) SetTargetSharers(sharers []int) {
	s.mu.Lock()
	defer s.mu.Unlock()
	if len(sharers) == 0 {
		s.targetSharers = nil
		return
	}
	s.targetSharers = append([]int(nil), sharers...)
}

// TargetSharers returns the contention factor for reads served by OST
// target. Without a table entry it falls back to the store-wide factor.
func (s *Store) TargetSharers(target int) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	if target >= 0 && target < len(s.targetSharers) && s.targetSharers[target] >= 1 {
		return s.targetSharers[target]
	}
	return s.sharers
}

// OpenHandles returns the number of files currently open for reading on
// the store. Leak tests assert this returns to zero after every
// comparison, including failed ones.
func (s *Store) OpenHandles() int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.openHandles
}

// ReadStats returns the cumulative read-operation count (cached plus
// uncached) and bytes moved since the store was created. Benchmarks diff
// two snapshots to measure how many PFS operations an approach issued.
func (s *Store) ReadStats() (ops, bytes int64) {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.statReadOps, s.statReadBytes
}

// path maps a store-relative name to the backing path, rejecting escapes.
func (s *Store) path(name string) (string, error) {
	clean := filepath.Clean(name)
	if clean == "." || strings.HasPrefix(clean, "..") || filepath.IsAbs(clean) {
		return "", fmt.Errorf("pfs: invalid name %q", name)
	}
	return filepath.Join(s.root, clean), nil
}

// SetFaultHook installs (or, with nil, removes) the store's fault-injection
// hook. Exactly one hook is active at a time; internal/faults provides the
// implementations and the schedule language.
func (s *Store) SetFaultHook(h FaultHook) {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.fault = h
}

// hook snapshots the installed fault hook.
func (s *Store) hook() FaultHook {
	s.mu.Lock()
	defer s.mu.Unlock()
	return s.fault
}

// Evict drops all of the file's pages from the simulated page cache — the
// equivalent of `vmtouch -e` in the paper's methodology.
func (s *Store) Evict(name string) {
	s.mu.Lock()
	defer s.mu.Unlock()
	delete(s.cache, name)
}

// EvictAll drops every file's pages.
func (s *Store) EvictAll() {
	s.mu.Lock()
	defer s.mu.Unlock()
	s.cache = make(map[string]map[int64]struct{})
}

// ResidentPages returns how many pages of the file are cached.
func (s *Store) ResidentPages(name string) int {
	s.mu.Lock()
	defer s.mu.Unlock()
	return len(s.cache[name])
}

// Remove deletes a file and its cache entries.
func (s *Store) Remove(name string) error {
	p, err := s.path(name)
	if err != nil {
		return err
	}
	s.Evict(name)
	if err := os.Remove(p); err != nil {
		return fmt.Errorf("pfs: remove %s: %w", name, err)
	}
	return nil
}

// List returns the names of files under the store root with the prefix,
// sorted lexicographically.
func (s *Store) List(prefix string) ([]string, error) {
	var names []string
	err := filepath.WalkDir(s.root, func(p string, d os.DirEntry, err error) error {
		if err != nil {
			return err
		}
		if d.IsDir() {
			return nil
		}
		rel, err := filepath.Rel(s.root, p)
		if err != nil {
			return err
		}
		rel = filepath.ToSlash(rel)
		if strings.HasPrefix(rel, prefix) {
			names = append(names, rel)
		}
		return nil
	})
	if err != nil {
		return nil, fmt.Errorf("pfs: list: %w", err)
	}
	sort.Strings(names)
	return names, nil
}

// pagesOf returns the page index range [first, last] covering [off, off+n).
func (m CostModel) pagesOf(off int64, n int) (int64, int64) {
	first := off / int64(m.PageSize)
	last := (off + int64(n) - 1) / int64(m.PageSize)
	return first, last
}

// touch classifies the page range of a read as cached/uncached bytes, marks
// the pages resident, and returns the cost of a single read operation over
// that range. Callers hold no lock.
func (s *Store) touch(name string, off int64, n int) Cost {
	if n <= 0 {
		return Cost{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pages := s.cache[name]
	if pages == nil {
		pages = make(map[int64]struct{})
		s.cache[name] = pages
	}
	first, last := s.model.pagesOf(off, n)
	var cold int64
	for p := first; p <= last; p++ {
		if _, ok := pages[p]; !ok {
			cold++
			pages[p] = struct{}{}
		}
	}
	total := int64(n)
	coldBytes := cold * int64(s.model.PageSize)
	if coldBytes > total {
		coldBytes = total
	}
	c := Cost{Bytes: coldBytes, CachedBytes: total - coldBytes}
	if cold > 0 {
		c.Ops = 1
	} else {
		c.CachedOps = 1
	}
	s.statReadOps++
	s.statReadBytes += total
	return c
}

// markWritten marks the page range resident after a write and returns its
// write cost (one op, all bytes uncached for bandwidth purposes).
func (s *Store) markWritten(name string, off int64, n int) Cost {
	if n <= 0 {
		return Cost{}
	}
	s.mu.Lock()
	defer s.mu.Unlock()
	pages := s.cache[name]
	if pages == nil {
		pages = make(map[int64]struct{})
		s.cache[name] = pages
	}
	first, last := s.model.pagesOf(off, n)
	for p := first; p <= last; p++ {
		pages[p] = struct{}{}
	}
	return Cost{Ops: 1, Bytes: int64(n)}
}

// File is an open read handle.
type File struct {
	store *Store
	name  string
	f     *os.File
	size  int64
}

// Open opens a file for reading.
func (s *Store) Open(name string) (*File, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	f, err := os.Open(p)
	if err != nil {
		return nil, fmt.Errorf("pfs: open %s: %w", name, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // the stat error takes precedence
		return nil, fmt.Errorf("pfs: stat %s: %w", name, err)
	}
	s.mu.Lock()
	s.openHandles++
	s.mu.Unlock()
	return &File{store: s, name: name, f: f, size: st.Size()}, nil
}

// Name returns the store-relative name.
func (f *File) Name() string { return f.name }

// Store returns the store the file belongs to (for cost pricing).
func (f *File) Store() *Store { return f.store }

// Size returns the file size in bytes.
func (f *File) Size() int64 { return f.size }

// ReadAt reads len(p) bytes at offset off, returning the bytes read and the
// cost of the operation. Short reads at EOF return io.EOF like os.File.
func (f *File) ReadAt(p []byte, off int64) (int, Cost, error) {
	if f.f == nil {
		return 0, Cost{}, ErrClosed
	}
	h := f.store.hook()
	if h != nil {
		if err := h.BeforeRead(f.name, off, len(p)); err != nil {
			return 0, Cost{}, fmt.Errorf("pfs: read %s@%d: %w", f.name, off, err)
		}
	}
	n, err := f.f.ReadAt(p, off)
	cost := f.store.touch(f.name, off, n)
	if err != nil && !errors.Is(err, io.EOF) {
		return n, cost, fmt.Errorf("pfs: read %s@%d: %w", f.name, off, err)
	}
	if h != nil && n > 0 {
		cost.Add(h.AfterRead(f.name, off, p[:n]))
	}
	return n, cost, err
}

// ReadAtCtx is ReadAt with a cancellation point: a read against an
// already-canceled context fails with ctx.Err() before touching storage.
// The asynchronous backends route their per-operation reads through this
// so a canceled comparison stops issuing I/O promptly.
func (f *File) ReadAtCtx(ctx context.Context, p []byte, off int64) (int, Cost, error) {
	if err := ctx.Err(); err != nil {
		return 0, Cost{}, err
	}
	return f.ReadAt(p, off)
}

// Close releases the handle.
func (f *File) Close() error {
	if f.f == nil {
		return nil
	}
	err := f.f.Close()
	f.f = nil
	f.store.mu.Lock()
	f.store.openHandles--
	f.store.mu.Unlock()
	return err
}

// Writer is a streaming file writer that accumulates virtual cost.
type Writer struct {
	store *Store
	name  string
	f     *os.File
	off   int64
	cost  Cost
}

// Create opens a file for writing, truncating any existing content.
func (s *Store) Create(name string) (*Writer, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("pfs: create dirs for %s: %w", name, err)
	}
	f, err := os.Create(p)
	if err != nil {
		return nil, fmt.Errorf("pfs: create %s: %w", name, err)
	}
	s.Evict(name)
	return &Writer{store: s, name: name, f: f}, nil
}

// Append opens a file for appending, creating it when absent. The writer
// continues at the current end of file, so append-only logs (the CAS pack
// and its index) grow across sessions without rewriting earlier content.
// Unlike Create, existing cached pages stay resident: appending adds data,
// it does not invalidate what readers already fetched.
func (s *Store) Append(name string) (*Writer, error) {
	p, err := s.path(name)
	if err != nil {
		return nil, err
	}
	if err := os.MkdirAll(filepath.Dir(p), 0o755); err != nil {
		return nil, fmt.Errorf("pfs: create dirs for %s: %w", name, err)
	}
	f, err := os.OpenFile(p, os.O_WRONLY|os.O_CREATE|os.O_APPEND, 0o644)
	if err != nil {
		return nil, fmt.Errorf("pfs: append %s: %w", name, err)
	}
	st, err := f.Stat()
	if err != nil {
		_ = f.Close() // the stat error takes precedence
		return nil, fmt.Errorf("pfs: stat %s: %w", name, err)
	}
	return &Writer{store: s, name: name, f: f, off: st.Size()}, nil
}

var _ io.WriteCloser = (*Writer)(nil)

// Write appends bytes, tracking cost per operation.
func (w *Writer) Write(p []byte) (int, error) {
	if w.f == nil {
		return 0, ErrClosed
	}
	if h := w.store.hook(); h != nil {
		keep, ferr := h.BeforeWrite(w.name, w.off, len(p))
		if ferr != nil {
			if keep < 0 {
				keep = 0
			}
			if keep > len(p) {
				keep = len(p)
			}
			// A torn write persists a prefix before failing, so the
			// file genuinely holds partial content for readers to trip
			// over.
			if keep > 0 {
				n, _ := w.f.Write(p[:keep])
				w.cost.Add(w.store.markWritten(w.name, w.off, n))
				w.off += int64(n)
			}
			return keep, fmt.Errorf("pfs: write %s: %w", w.name, ferr)
		}
	}
	n, err := w.f.Write(p)
	w.cost.Add(w.store.markWritten(w.name, w.off, n))
	w.off += int64(n)
	if err != nil {
		return n, fmt.Errorf("pfs: write %s: %w", w.name, err)
	}
	return n, nil
}

// Cost returns the accumulated write cost so far.
func (w *Writer) Cost() Cost { return w.cost }

// Close flushes and closes the file.
func (w *Writer) Close() error {
	if w.f == nil {
		return nil
	}
	err := w.f.Close()
	w.f = nil
	if err != nil {
		return fmt.Errorf("pfs: close %s: %w", w.name, err)
	}
	return nil
}

// ReadFileFull reads an entire file sequentially in large blocks and
// returns its content with the aggregate cost — the access pattern of the
// AllClose baseline. Each block read is a cancellation point.
func (s *Store) ReadFileFull(ctx context.Context, name string, blockSize int) ([]byte, Cost, error) {
	if blockSize <= 0 {
		blockSize = 1 << 20
	}
	f, err := s.Open(name)
	if err != nil {
		return nil, Cost{}, err
	}
	//lint:ignore errclose read-only handle; every ReadAt error is already checked below
	defer f.Close()
	data := make([]byte, f.Size())
	var total Cost
	for off := int64(0); off < f.Size(); off += int64(blockSize) {
		end := off + int64(blockSize)
		if end > f.Size() {
			end = f.Size()
		}
		_, c, err := f.ReadAtCtx(ctx, data[off:end], off)
		total.Add(c)
		if err != nil && !errors.Is(err, io.EOF) {
			return nil, total, err
		}
	}
	return data, total, nil
}
