GO ?= go

.PHONY: all build vet lint lint-fast test race check chaos chaos-smoke bench bench-smoke bench-json reprod-smoke wal-smoke experiments examples clean

all: build vet test

# check is the pre-PR gate: everything that must be green before merging.
# lint runs at tier 2 (type-aware dataflow) and audits the tree's
# suppression directives; the tier-2 smoke budget (<10s on the whole
# tree) is asserted by TestTierTwoBudget in internal/lint.
check: build vet lint test race chaos-smoke bench-smoke reprod-smoke wal-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the full project static-analysis suite — tier 1 (syntactic)
# plus tier 2 (go/types-backed dataflow: detflow, epsflow) — and then
# audits //lint:ignore directives for staleness. See internal/lint and
# `go run ./cmd/reprovet -list`.
lint:
	$(GO) run ./cmd/reprovet ./...
	$(GO) run ./cmd/reprovet -audit-ignores ./...

# lint-fast is the syntactic tier only: no type checking, sub-second,
# suited to editor save hooks and quick pre-commit loops.
lint-fast:
	$(GO) run ./cmd/reprovet -tier 1 ./...

test:
	$(GO) test ./...

# The race detector slows the experiment-reproduction tests ~10x, so the
# per-package timeout is raised above Go's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

# chaos soaks the degradation ladder at full scale: seeded fault
# schedules × topologies under the race detector (see internal/chaos).
chaos:
	CHAOS_FULL=1 $(GO) test -race -count=1 -timeout 30m -v -run 'TestChaos' ./internal/chaos/

# chaos-smoke is the small-scale soak that gates `make check`.
chaos-smoke:
	$(GO) test -race -count=1 -run 'TestChaos' ./internal/chaos/

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke validates the benchmark runners end-to-end in milliseconds
# (tiny sizes, output discarded); part of `make check`.
bench-smoke:
	$(GO) run ./cmd/benchkernels -smoke > /dev/null
	$(GO) run ./cmd/benchstream -smoke > /dev/null
	$(GO) run ./cmd/benchgroup -smoke > /dev/null
	$(GO) run ./cmd/benchcapture -smoke > /dev/null
	$(GO) run ./cmd/benchshard -smoke > /dev/null

# reprod-smoke boots the comparison daemon on a loopback listener and
# drives the full HTTP lifecycle: run registration, compare/group/shard
# jobs to their verdicts, error mapping, and graceful SIGTERM drain.
# Part of `make check`.
reprod-smoke:
	$(GO) test -count=1 -run 'TestReprodSmoke' ./cmd/reprod/

# wal-smoke is the crash-durability gate: a real reprod process with
# -journal takes a job to its verdict, dies by SIGKILL, and the
# restarted process must serve that verdict from the hash-chained
# ledger, with reprocmp verify-log green over the surviving chain.
# Part of `make check`.
wal-smoke:
	$(GO) test -count=1 -run 'TestWALKillRestartSmoke' ./cmd/reprod/

# bench-json regenerates the tracked baselines at the repository root:
# kernel throughput (BENCH_kernels.json), the stage-2 streaming pipeline
# (BENCH_stream.json), the N-run group-comparison engine
# (BENCH_group.json), the differential-capture pipeline
# (BENCH_capture.json), and the subtree-sharded scale-out engine
# (BENCH_shard.json). Diff them in review to catch regressions
# (same-machine deltas are signal, cross-machine noise; the virtual and
# read-op columns are deterministic and comparable anywhere).
bench-json:
	$(GO) run ./cmd/benchkernels -o BENCH_kernels.json
	$(GO) run ./cmd/benchstream -o BENCH_stream.json
	$(GO) run ./cmd/benchgroup -o BENCH_group.json
	$(GO) run ./cmd/benchshard -o BENCH_shard.json

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ciregression
	$(GO) run ./examples/heatsolver
	$(GO) run ./examples/haccrepro
	$(GO) run ./examples/onlinecompare

clean:
	$(GO) clean ./...
