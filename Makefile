GO ?= go

.PHONY: all build vet lint test race check bench experiments examples clean

all: build vet test

# check is the pre-PR gate: everything that must be green before merging.
check: build vet lint test race

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project-specific static-analysis suite (see internal/lint
# and `go run ./cmd/reprovet -list`).
lint:
	$(GO) run ./cmd/reprovet ./...

test:
	$(GO) test ./...

# The race detector slows the experiment-reproduction tests ~10x, so the
# per-package timeout is raised above Go's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ciregression
	$(GO) run ./examples/heatsolver
	$(GO) run ./examples/haccrepro
	$(GO) run ./examples/onlinecompare

clean:
	$(GO) clean ./...
