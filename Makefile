GO ?= go

.PHONY: all build vet lint test race check bench bench-smoke bench-json experiments examples clean

all: build vet test

# check is the pre-PR gate: everything that must be green before merging.
check: build vet lint test race bench-smoke

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

# lint runs the project-specific static-analysis suite (see internal/lint
# and `go run ./cmd/reprovet -list`).
lint:
	$(GO) run ./cmd/reprovet ./...

test:
	$(GO) test ./...

# The race detector slows the experiment-reproduction tests ~10x, so the
# per-package timeout is raised above Go's 10m default.
race:
	$(GO) test -race -timeout 30m ./...

bench:
	$(GO) test -bench=. -benchmem ./...

# bench-smoke validates the kernel-benchmark runner end-to-end in
# milliseconds (tiny sizes, output discarded); part of `make check`.
bench-smoke:
	$(GO) run ./cmd/benchkernels -smoke > /dev/null

# bench-json regenerates the tracked kernel-throughput baseline at the
# repository root. Diff BENCH_kernels.json in review to catch kernel
# regressions (same-machine deltas are signal, cross-machine noise).
bench-json:
	$(GO) run ./cmd/benchkernels -o BENCH_kernels.json

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ciregression
	$(GO) run ./examples/heatsolver
	$(GO) run ./examples/haccrepro
	$(GO) run ./examples/onlinecompare

clean:
	$(GO) clean ./...
