GO ?= go

.PHONY: all build vet test race bench experiments examples clean

all: build vet test

build:
	$(GO) build ./...

vet:
	$(GO) vet ./...

test:
	$(GO) test ./...

race:
	$(GO) test -race ./internal/mpi ./internal/aio ./internal/ckpt \
		./internal/stream ./internal/cluster ./internal/hacc

bench:
	$(GO) test -bench=. -benchmem ./...

# Regenerate every paper table and figure (see EXPERIMENTS.md).
experiments:
	$(GO) run ./cmd/experiments -all

examples:
	$(GO) run ./examples/quickstart
	$(GO) run ./examples/ciregression
	$(GO) run ./examples/heatsolver
	$(GO) run ./examples/haccrepro
	$(GO) run ./examples/onlinecompare

clean:
	$(GO) clean ./...
